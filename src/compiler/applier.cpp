#include "compiler/applier.hpp"

#include <algorithm>
#include <stdexcept>

namespace fetcam::compiler {
namespace {

/// Submit `reqs` in chunks of `chunk`, waiting for each batch (so phase
/// boundaries are real barriers).  Returns per-request results in order.
std::vector<engine::RequestResult> run_chunked(engine::SearchEngine& eng,
                                               std::vector<engine::Request> reqs,
                                               int chunk, ApplyStats& stats) {
  std::vector<engine::RequestResult> results;
  results.reserve(reqs.size());
  const std::size_t step =
      chunk > 0 ? static_cast<std::size_t>(chunk) : reqs.size();
  for (std::size_t at = 0; at < reqs.size(); at += step) {
    const std::size_t n = std::min(step, reqs.size() - at);
    std::vector<engine::Request> batch(
        std::make_move_iterator(reqs.begin() + static_cast<std::ptrdiff_t>(at)),
        std::make_move_iterator(
            reqs.begin() + static_cast<std::ptrdiff_t>(at + n)));
    engine::BatchResult res = eng.execute(std::move(batch));
    ++stats.batches;
    for (auto& r : res.results) results.push_back(r);
  }
  return results;
}

}  // namespace

ApplyResult apply_plan(engine::SearchEngine& engine, const UpdatePlan& plan,
                       const CompiledRuleSet& next,
                       const ApplyOptions& options) {
  ApplyResult out;
  out.installed.cols = next.cols;
  out.installed.entries.resize(next.entries.size());

  // Ops indexed by compiled entry / phase.
  std::vector<const PlanOp*> insert_ops;   // MAKE (ascending final order)
  std::vector<const PlanOp*> commit_ops;   // kSetPriority / kRewrite
  std::vector<const PlanOp*> erase_ops;    // COMMIT tail (atomic with flips)
  std::vector<const PlanOp*> break_ops;    // kRelocate
  for (const PlanOp& op : plan.ops) {
    switch (op.kind) {
      case PlanOpKind::kInsert:
        insert_ops.push_back(&op);
        break;
      case PlanOpKind::kSetPriority:
      case PlanOpKind::kRewrite:
        commit_ops.push_back(&op);
        break;
      case PlanOpKind::kErase:
        erase_ops.push_back(&op);
        break;
      case PlanOpKind::kRelocate:
        break_ops.push_back(&op);
        break;
      case PlanOpKind::kKeep: {
        const auto& want = next.entries[static_cast<std::size_t>(op.compiled_index)];
        InstalledEntry& slot =
            out.installed.entries[static_cast<std::size_t>(op.compiled_index)];
        slot.id = op.target;
        slot.word = want.word;
        slot.priority = want.priority;
        slot.source_rule = want.source_rule;
        break;
      }
    }
  }
  // Compiled entries are already in ascending (priority, index) order, so
  // compiled_index order IS ascending final-priority order for the MAKE
  // phase (earliest winners appear first).
  std::sort(insert_ops.begin(), insert_ops.end(),
            [](const PlanOp* a, const PlanOp* b) {
              return a->compiled_index < b->compiled_index;
            });

  // Phase 1 — MAKE: fresh writes at shadow priorities.
  std::vector<engine::Request> makes;
  makes.reserve(insert_ops.size());
  for (const PlanOp* op : insert_ops) {
    const auto& want = next.entries[static_cast<std::size_t>(op->compiled_index)];
    makes.push_back(engine::make_insert(
        want.word, want.priority + plan.shadow_priority_offset, op->mat));
  }
  const auto make_results =
      run_chunked(engine, std::move(makes), options.chunk, out.stats);
  for (std::size_t k = 0; k < insert_ops.size(); ++k) {
    if (!make_results[k].hit) {
      throw std::runtime_error(
          "plan insert failed: table drifted from the planned capacity");
    }
    const PlanOp* op = insert_ops[k];
    const auto& want = next.entries[static_cast<std::size_t>(op->compiled_index)];
    InstalledEntry& slot =
        out.installed.entries[static_cast<std::size_t>(op->compiled_index)];
    slot.id = make_results[k].entry;
    slot.word = want.word;
    slot.priority = want.priority;
    slot.source_rule = want.source_rule;
    ++out.stats.inserted;
  }

  // Phase 2 — COMMIT: one atomic batch flips every shadow to its final
  // priority, applies every delta rewrite (with its priority, in case the
  // paired row changed levels too), and erases every orphan.  Searches
  // see the table before this batch or after it, nothing in between.
  std::vector<engine::Request> commit;
  commit.reserve(insert_ops.size() + 2 * commit_ops.size() + erase_ops.size());
  for (std::size_t k = 0; k < insert_ops.size(); ++k) {
    const PlanOp* op = insert_ops[k];
    const auto& want = next.entries[static_cast<std::size_t>(op->compiled_index)];
    commit.push_back(
        engine::make_set_priority(make_results[k].entry, want.priority));
    ++out.stats.priority_flips;
  }
  for (const PlanOp* op : commit_ops) {
    const auto& want = next.entries[static_cast<std::size_t>(op->compiled_index)];
    if (op->kind == PlanOpKind::kRewrite) {
      commit.push_back(engine::make_rewrite(op->target, want.word));
      ++out.stats.rewritten;
    }
    commit.push_back(engine::make_set_priority(op->target, want.priority));
    ++out.stats.priority_flips;
    InstalledEntry& slot =
        out.installed.entries[static_cast<std::size_t>(op->compiled_index)];
    slot.id = op->target;
    slot.word = want.word;
    slot.priority = want.priority;
    slot.source_rule = want.source_rule;
  }
  for (const PlanOp* op : erase_ops) {
    commit.push_back(engine::make_erase(op->target));
    ++out.stats.erased;
  }
  if (!commit.empty()) {
    engine.execute(std::move(commit));
    ++out.stats.batches;
  }

  // Phase 3 — BREAK: wear-driven relocations.
  std::vector<engine::Request> breaks;
  breaks.reserve(break_ops.size());
  for (const PlanOp* op : break_ops) {
    breaks.push_back(engine::make_relocate(op->target, op->mat));
    ++out.stats.relocated;
  }
  run_chunked(engine, std::move(breaks), options.chunk, out.stats);
  return out;
}

}  // namespace fetcam::compiler
