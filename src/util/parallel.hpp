// Chunked parallel_for over a lazily-initialized global thread pool.
//
// Goals, in priority order:
//   1. DETERMINISM — the scheduler never influences results.  parallel_for
//      hands each index to the body exactly once; consumers write results
//      into per-index slots (see parallel_map) or accumulate per-chunk
//      partials with FIXED chunk boundaries and merge them in index order.
//      Nothing in this header introduces an ordering dependence.
//   2. Simplicity — one job at a time, caller participates, no work
//      stealing.  The Monte-Carlo bodies here cost ~1 ms each (a Newton
//      solve of a divider circuit), so a shared atomic chunk cursor is
//      contention-free at any realistic thread count.
//   3. Safety — exceptions thrown by the body abort the remaining chunks
//      and are rethrown on the calling thread; nested parallel_for calls
//      (from inside a body) run inline on the calling worker instead of
//      deadlocking the pool.
//
// Thread-count resolution, highest priority first:
//   set_thread_count(n)        explicit (the CLI --threads flag)
//   FETCAM_THREADS             environment override
//   std::thread::hardware_concurrency()
// A count of 1 bypasses the pool entirely (pure serial execution).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace fetcam::util {

/// Number of threads parallel_for will use.  Resolves the override chain
/// above; always >= 1.
int thread_count();

/// Force the pool size.  n <= 0 restores automatic resolution
/// (FETCAM_THREADS / hardware_concurrency).  Takes effect on the next
/// parallel_for; safe to call between runs (the determinism tests cycle
/// 1 / 2 / 8 threads this way).
void set_thread_count(int n);

/// True while the current thread is executing inside a parallel_for body
/// (nested calls run inline).
bool inside_parallel_region();

/// Invoke fn(i) for every i in [0, n), distributed over the pool in
/// chunks.  Blocks until every index completed.  The first exception
/// thrown by fn aborts unclaimed chunks and is rethrown here.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Invoke fn(begin, end) for consecutive ranges covering [0, n), each of
/// size `chunk` (the last may be shorter).  Chunk boundaries depend only
/// on (n, chunk) — never on the thread count — so per-chunk partial
/// reductions merged in chunk order are bit-identical for any schedule.
void parallel_for_chunks(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// Ordered map: out[i] = fn(i), computed in parallel.  Each slot is
/// written exactly once by its own index, so the result vector is
/// independent of the schedule.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace fetcam::util
