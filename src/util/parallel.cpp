#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fetcam::util {

namespace {

thread_local bool t_inside_region = false;

/// Parallel-engine metrics.  Chunk timings come from an instrumented body
/// wrapper installed only when observability is on, so the off path runs
/// the caller's std::function directly — identical to pre-instrumentation.
struct ParallelMetrics {
  obs::Counter& jobs;
  obs::Counter& chunks;
  obs::Gauge& threads;
  obs::Histogram& chunk_us;
  obs::Histogram& job_us;

  static ParallelMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static ParallelMetrics m{
        reg.counter("parallel.jobs"),
        reg.counter("parallel.chunks"),
        reg.gauge("parallel.threads"),
        // 10 us .. ~80 ms chunk / 160 ms job, x2 per bucket.
        reg.histogram("parallel.chunk_us", obs::exponential_bounds(10, 2, 14)),
        reg.histogram("parallel.job_us", obs::exponential_bounds(20, 2, 14)),
    };
    return m;
  }
};

/// One parallel_for invocation: a shared chunk cursor plus completion
/// bookkeeping.  Every chunk index is claimed exactly once (fetch_add)
/// and counted in `finished` exactly once, so `finished == total_chunks`
/// proves no body is still running — even on the abort path, where
/// claimed-but-skipped chunks still count.
struct Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t total_chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> finished{0};
  std::atomic<bool> aborted{false};
  std::exception_ptr error;
  std::mutex error_mu;

  void work() {
    t_inside_region = true;
    for (;;) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= total_chunks) break;
      if (!aborted.load(std::memory_order_relaxed)) {
        const std::size_t begin = c * chunk;
        try {
          (*body)(begin, std::min(n, begin + chunk));
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
          aborted.store(true, std::memory_order_relaxed);
        }
      }
      finished.fetch_add(1, std::memory_order_release);
    }
    t_inside_region = false;
  }

  bool done() const {
    return finished.load(std::memory_order_acquire) == total_chunks;
  }
};

/// Lazily started global pool.  Workers sleep on a condition variable
/// between jobs and are identified by a job generation counter, so a
/// worker can never re-enter a job it already drained (even if the next
/// Job lands on the same stack address).  resize happens only on
/// set_thread_count — CLI startup or between determinism-test runs.
class Pool {
 public:
  static Pool& instance() {
    static Pool p;
    return p;
  }

  int threads() {
    const std::lock_guard<std::mutex> lock(config_mu_);
    return resolve_locked();
  }

  void set_threads(int n) {
    const std::lock_guard<std::mutex> lock(config_mu_);
    override_ = n > 0 ? n : 0;
  }

  void run(Job& job) {
    // Serialize top-level regions: one job owns the pool at a time.
    const std::lock_guard<std::mutex> run_lock(run_mu_);
    int want;
    {
      const std::lock_guard<std::mutex> lock(config_mu_);
      want = resolve_locked();
    }
    ensure_workers(want - 1);
    if (!workers_.empty()) {
      const std::lock_guard<std::mutex> lock(job_mu_);
      job_ = &job;
      ++job_seq_;
      job_cv_.notify_all();
    }
    // The caller is a full participant — with one thread this IS the
    // execution and the pool machinery stays untouched.
    job.work();
    if (!workers_.empty()) {
      std::unique_lock<std::mutex> lock(job_mu_);
      done_cv_.wait(lock, [&] { return job.done() && active_ == 0; });
      job_ = nullptr;
    }
  }

  ~Pool() { ensure_workers(0); }

 private:
  Pool() = default;

  int resolve_locked() {
    if (override_ > 0) return override_;
    if (const char* env = std::getenv("FETCAM_THREADS")) {
      const int n = std::atoi(env);
      if (n > 0) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  void ensure_workers(int want) {
    if (static_cast<int>(workers_.size()) == want) return;
    {
      const std::lock_guard<std::mutex> lock(job_mu_);
      stopping_ = true;
      job_cv_.notify_all();
    }
    for (auto& w : workers_) w.join();
    workers_.clear();
    stopping_ = false;
    for (int i = 0; i < want; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(job_mu_);
        job_cv_.wait(lock, [&] {
          return stopping_ || (job_ != nullptr && job_seq_ != seen);
        });
        if (stopping_) return;
        seen = job_seq_;
        job = job_;
        ++active_;
      }
      job->work();
      {
        const std::lock_guard<std::mutex> lock(job_mu_);
        --active_;
        done_cv_.notify_all();
      }
    }
  }

  std::mutex config_mu_;
  int override_ = 0;

  std::mutex run_mu_;
  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  int active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

int thread_count() { return Pool::instance().threads(); }

void set_thread_count(int n) { Pool::instance().set_threads(n); }

bool inside_parallel_region() { return t_inside_region; }

void parallel_for_chunks(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;

  // With observability on, route every chunk through a timing/span wrapper.
  // Metric totals stay schedule-independent (chunk boundaries are fixed);
  // only the wall-time histograms vary run to run.  Off: `body` aliases the
  // caller's function and the hot path is untouched.
  const bool instrumented = obs::metrics_on() || obs::trace_on();
  std::function<void(std::size_t, std::size_t)> wrapped;
  if (instrumented) {
    wrapped = [&fn](std::size_t begin, std::size_t end) {
      const obs::ScopedSpan span("parallel.chunk", "util");
      const bool m = obs::metrics_on();
      const double t0 = m ? obs::now_us() : 0.0;
      fn(begin, end);
      if (m) {
        auto& pm = ParallelMetrics::get();
        pm.chunks.add();
        pm.chunk_us.observe(obs::now_us() - t0);
      }
    };
  }
  const auto& body = instrumented ? wrapped : fn;

  const double t_job = instrumented ? obs::now_us() : 0.0;
  // Nested regions (or an explicit single thread) run inline: same chunk
  // boundaries, same results, no pool interaction.
  if (t_inside_region || thread_count() == 1) {
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      body(begin, std::min(n, begin + chunk));
    }
  } else {
    Job job;
    job.n = n;
    job.chunk = chunk;
    job.total_chunks = (n + chunk - 1) / chunk;
    job.body = &body;
    Pool::instance().run(job);
    if (job.error) std::rethrow_exception(job.error);
  }
  if (instrumented && obs::metrics_on()) {
    auto& pm = ParallelMetrics::get();
    pm.jobs.add();
    pm.threads.set(thread_count());
    pm.job_us.observe(obs::now_us() - t_job);
  }
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  // Chunk for scheduling only — the per-index body keeps results
  // schedule-independent, so the grain may track the thread count.
  const std::size_t grain = std::max<std::size_t>(
      1, n / (static_cast<std::size_t>(thread_count()) * 8));
  parallel_for_chunks(n, grain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace fetcam::util
