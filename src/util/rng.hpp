// Counter-based per-trial random streams for deterministic parallel
// Monte-Carlo.
//
// The variability / trim analyses draw thousands of independent device
// samples.  A single shared std::mt19937 makes the result depend on the
// ORDER trials execute in — any parallelization, reordering, or added
// draw silently changes every downstream number.  Instead, each trial
// derives its own generator from the key (seed, trial_index, stream):
//
//   * the key is mixed through splitmix64 (Vigna's finalizer, the
//     standard seeding mix for this purpose) into eight 32-bit words;
//   * those words seed a std::mt19937 through std::seed_seq, whose
//     generate() algorithm is fully specified by the C++ standard — so
//     the raw draw sequence is identical across implementations;
//   * distinct trial indices (or streams) give statistically independent
//     generators, and trial i's stream never depends on how many draws
//     trial j consumed.
//
// Stream layout convention used by the eval consumers:
//   stream 0 — device sampling (sample_cell): the six Gaussian draws
//              vth_fe, ps, vc, tn, tp, tml, in that order;
//   streams 1+ — reserved for future per-trial consumers (e.g. noisy
//              verify reads) so they can be added without perturbing
//              stream 0.
//
// Changing the number of draws inside one trial, the thread count, the
// chunk size, or the execution schedule does not change any other
// trial's values.
#pragma once

#include <cstdint>
#include <random>

namespace fetcam::util {

/// splitmix64 state-advance + finalizer (public-domain reference
/// algorithm by Sebastiano Vigna).  Passes the known-answer vectors in
/// tests/util/rng_test.cpp.
struct SplitMix64 {
  std::uint64_t state = 0;

  constexpr explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
};

/// Collision-resistant mix of (seed, trial, stream) into one 64-bit key.
/// Each component passes through a full splitmix64 round, so nearby
/// trial indices map to well-separated keys.
constexpr std::uint64_t trial_key(std::uint64_t seed, std::uint64_t trial,
                                  std::uint64_t stream = 0) {
  SplitMix64 a(seed);
  SplitMix64 b(a.next() ^ trial);
  SplitMix64 c(b.next() ^ stream);
  return c.next();
}

/// The per-trial generator: a std::mt19937 whose seed material is the
/// splitmix64 expansion of trial_key(seed, trial, stream).
std::mt19937 trial_rng(std::uint64_t seed, std::uint64_t trial,
                       std::uint64_t stream = 0);

/// Van der Corput radical inverse of `index` in the given base: digit-
/// reverses the base-b expansion into [0, 1).  The b-th prime per
/// dimension gives the Halton low-discrepancy sequence used by the DSE
/// sampler and the quasi-MC hypervolume estimate — fully deterministic,
/// no RNG state.
constexpr double radical_inverse(std::uint64_t index, std::uint64_t base) {
  double inv_base = 1.0 / static_cast<double>(base);
  double scale = inv_base;
  double value = 0.0;
  while (index > 0) {
    value += static_cast<double>(index % base) * scale;
    index /= base;
    scale *= inv_base;
  }
  return value;
}

}  // namespace fetcam::util
