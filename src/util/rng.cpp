#include "util/rng.hpp"

namespace fetcam::util {

std::mt19937 trial_rng(std::uint64_t seed, std::uint64_t trial,
                       std::uint64_t stream) {
  // Expand the key into eight 32-bit words — more entropy than a single
  // result_type seed, cheap enough for one call per trial, and routed
  // through std::seed_seq whose output is fully specified (26.6.7.1) so
  // the downstream mt19937 stream is implementation-independent.
  SplitMix64 sm(trial_key(seed, trial, stream));
  std::uint32_t words[8];
  for (int i = 0; i < 8; i += 2) {
    const std::uint64_t z = sm.next();
    words[i] = static_cast<std::uint32_t>(z);
    words[i + 1] = static_cast<std::uint32_t>(z >> 32);
  }
  std::seed_seq seq(words, words + 8);
  return std::mt19937(seq);
}

}  // namespace fetcam::util
