// 14 nm FDSOI technology cards: MOSFET parameter sets and node constants.
//
// Values are representative of published 14 nm UTBB FDSOI data (Liu et al.,
// IEDM 2013 — the same calibration target the paper uses): V_DD = 0.8 V,
// SS ~ 70 mV/dec, on/off > 1e5 at V_DD.  Wire parasitics for intermediate
// metal are in tcam/parasitics.hpp.
#pragma once

#include "devices/mosfet.hpp"

namespace fetcam::dev::tech14 {

/// Nominal supply for the 14 nm logic rails.
inline constexpr double kVdd = 0.8;

/// Minimum drawn device geometry used throughout the paper (20 nm x 50 nm).
inline constexpr double kLmin = 20e-9;
inline constexpr double kWmin = 50e-9;

/// NFET card; `w_mult` scales the width in units of the 50 nm minimum.
MosfetParams nfet(double w_mult = 1.0, double l_mult = 1.0);

/// PFET card (lower mobility, slightly higher |Vth|).
MosfetParams pfet(double w_mult = 1.0, double l_mult = 1.0);

/// Retarget a card to a different junction temperature (kelvin; cards are
/// characterized at 300 K).  Applies the standard first-order corrections:
///   Ut   = kT/q                                    (thermal voltage)
///   Vth  = Vth(300K) - 0.8 mV/K * (T - 300)        (threshold rolloff)
///   u0   = u0(300K) * (T/300)^-1.5                 (phonon-limited mobility)
/// Subthreshold leakage rises and strong-inversion drive falls with T — the
/// sense-margin vs temperature behaviour the temperature ablation probes.
MosfetParams at_temperature(MosfetParams card, double kelvin);

}  // namespace fetcam::dev::tech14

namespace fetcam::dev {
struct FeFetParams;
}

namespace fetcam::dev::tech14 {

/// FeFET variant: retargets the embedded MOSFET and additionally reduces
/// the coercive voltage (~ -0.1 %/K, the ferroelectric's Curie-law trend).
FeFetParams fefet_at_temperature(FeFetParams card, double kelvin);

/// Global process corners: slow/typical/fast, shifting V_TH by -/0/+
/// ~2 sigma (40 mV) and mobility by -/0/+8 %.  Slow = high V_TH + low
/// mobility; fast = the opposite.
enum class Corner { kSlow, kTypical, kFast };

MosfetParams at_corner(MosfetParams card, Corner corner);
FeFetParams fefet_at_corner(FeFetParams card, Corner corner);

}  // namespace fetcam::dev::tech14
