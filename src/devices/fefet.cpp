#include "devices/fefet.hpp"

#include "devices/tech14.hpp"

#include <cmath>
#include <stdexcept>

namespace fetcam::dev {

double FeFetParams::write_voltage_for_vth(double vth_target) const {
  const double p_norm = (mos.vth0 - vth_target) / (mw_fg / 2.0);
  if (p_norm <= -1.0 || p_norm >= 1.0) {
    // Saturated states: full write voltage.
    return p_norm > 0.0 ? fe.vw() : -fe.vw();
  }
  // Quasi-static programming from the erased (P = -Ps) state lands on the
  // ascending branch: p = Ps tanh((v - Vc)/Vslope)  =>  invert.
  return fe.vc + fe.vslope * std::atanh(p_norm);
}

FeFet::FeFet(std::string name, spice::NodeId d, spice::NodeId fg,
             spice::NodeId s, spice::NodeId bg, FeFetParams params)
    : Device(std::move(name)),
      d_(d),
      fg_(fg),
      s_(s),
      bg_(bg),
      params_(params),
      cfg_s_(0.5 * params.mos.cgate() + params.mos.cov_per_w * params.mos.w),
      cfg_d_(0.5 * params.mos.cgate() + params.mos.cov_per_w * params.mos.w),
      cbg_s_(params.c_bg_factor * params.mos.cgate()),
      cdb_(params.mos.cjunction()),
      csb_(params.cj_source_per_w * params.mos.w) {}

void FeFet::set_state(FeState s, double mvt_vth_target) {
  switch (s) {
    case FeState::kHvt:
      p_ = -params_.fe.ps;
      break;
    case FeState::kLvt:
      p_ = params_.fe.ps;
      break;
    case FeState::kMvt: {
      const double p_norm =
          (params_.mos.vth0 - mvt_vth_target) / (params_.mw_fg / 2.0);
      if (p_norm < -1.0 || p_norm > 1.0) {
        throw std::invalid_argument("MVT target outside the memory window");
      }
      p_ = p_norm * params_.fe.ps;
      break;
    }
  }
}

void FeFet::set_polarization(double p) { p_ = p; }

FeFet::ChannelEval FeFet::eval_channel(double vd, double vfg, double vs,
                                       double vbg) const {
  // FeFETs are n-channel; reverse conduction handled by terminal swap.
  const bool swapped = vd < vs;
  const double v_hi = swapped ? vs : vd;
  const double v_lo = swapped ? vd : vs;
  const double vds = v_hi - v_lo;
  const double k = params_.back_coupling;
  const double vgs_eff = (vfg - v_lo) + k * (vbg - v_lo);
  const double vth = params_.vth_for(p_ / params_.fe.ps);
  const double vov = vgs_eff - vth;

  const EkvResult r = ekv_current(params_.mos.ekv(), vov, vds);

  ChannelEval out;
  const double dir = swapped ? -1.0 : 1.0;
  out.current = dir * r.id;

  const double dI_dvhi = r.did_dvds;
  const double dI_dvlo = -r.did_dvov * (1.0 + k) - r.did_dvds;
  out.dI_dVd = dir * (swapped ? dI_dvlo : dI_dvhi);
  out.dI_dVs = dir * (swapped ? dI_dvhi : dI_dvlo);
  out.dI_dVfg = dir * r.did_dvov;
  out.dI_dVbg = dir * k * r.did_dvov;
  return out;
}

void FeFet::stamp(const spice::EvalContext& ctx, spice::Stamper& st) const {
  const ChannelEval ch =
      eval_channel(st.v(d_), st.v(fg_), st.v(s_), st.v(bg_));
  st.add_current(d_, s_, ch.current);
  st.add_current_derivative(d_, s_, d_, ch.dI_dVd);
  st.add_current_derivative(d_, s_, fg_, ch.dI_dVfg);
  st.add_current_derivative(d_, s_, s_, ch.dI_dVs);
  st.add_current_derivative(d_, s_, bg_, ch.dI_dVbg);
  st.stamp_conductance(d_, s_, params_.g_leak);
  st.add_gmin(d_, ctx.gmin);
  st.add_gmin(s_, ctx.gmin);

  // Polarization switching current through the FG (split to both channel
  // ends).  Uses the committed polarization as the step's starting state so
  // every Newton iteration sees a consistent history.
  if (ctx.mode == spice::AnalysisMode::kTransient && ctx.dt > 0.0) {
    const double v_fe = fe_drive_voltage(st.v(fg_), st.v(d_), st.v(s_));
    const PolarizationStep psr =
        advance_polarization(params_.fe, p_, v_fe, ctx.dt);
    const double a = params_.fe.area;
    const double i_sw = a * (psr.p_end - p_) / ctx.dt;
    const double di_dvfe = a * psr.dp_dv / ctx.dt;

    st.add_current(fg_, d_, 0.5 * i_sw);
    st.add_current(fg_, s_, 0.5 * i_sw);
    // d v_fe / d vfg = 1, / d vd = -0.5, / d vs = -0.5.
    st.add_current_derivative(fg_, d_, fg_, 0.5 * di_dvfe);
    st.add_current_derivative(fg_, d_, d_, -0.25 * di_dvfe);
    st.add_current_derivative(fg_, d_, s_, -0.25 * di_dvfe);
    st.add_current_derivative(fg_, s_, fg_, 0.5 * di_dvfe);
    st.add_current_derivative(fg_, s_, d_, -0.25 * di_dvfe);
    st.add_current_derivative(fg_, s_, s_, -0.25 * di_dvfe);
  }

  cfg_s_.stamp(ctx, st, fg_, s_);
  cfg_d_.stamp(ctx, st, fg_, d_);
  cbg_s_.stamp(ctx, st, bg_, s_);
  cdb_.stamp(ctx, st, d_, bg_);
  csb_.stamp(ctx, st, s_, bg_);
}

void FeFet::initialize_state(const spice::EvalContext& ctx,
                             const spice::Solution& sol) {
  (void)ctx;
  cfg_s_.initialize(sol, fg_, s_);
  cfg_d_.initialize(sol, fg_, d_);
  cbg_s_.initialize(sol, bg_, s_);
  cdb_.initialize(sol, d_, bg_);
  csb_.initialize(sol, s_, bg_);
  // Polarization is non-volatile: deliberately NOT reset here.
}

void FeFet::commit_step(const spice::EvalContext& ctx,
                        const spice::Solution& sol) {
  const double v_fe =
      fe_drive_voltage(sol.v(fg_), sol.v(d_), sol.v(s_));
  p_ = advance_polarization(params_.fe, p_, v_fe, ctx.dt).p_end;
  cfg_s_.commit(ctx, sol, fg_, s_);
  cfg_d_.commit(ctx, sol, fg_, d_);
  cbg_s_.commit(ctx, sol, bg_, s_);
  cdb_.commit(ctx, sol, d_, bg_);
  csb_.commit(ctx, sol, s_, bg_);
}

double FeFet::drain_current(const spice::Solution& sol) const {
  const double vds = sol.v(d_) - sol.v(s_);
  return eval_channel(sol.v(d_), sol.v(fg_), sol.v(s_), sol.v(bg_)).current +
         params_.g_leak * vds;
}

double FeFet::on_resistance(const spice::Solution& sol) const {
  const double vds = sol.v(d_) - sol.v(s_);
  const double id = drain_current(sol);
  return std::abs(vds) / std::max(std::abs(id), 1e-15);
}

FeFetParams sg_fefet_params() {
  FeFetParams p;
  p.mos = tech14::nfet();
  // MVT midpoint; LVT = 0.28, HVT = 2.08.  The LVT level balances the
  // 1.5T1Fe divider constraints: low enough that a selected LVT cell pulls
  // SL_bar above the TML threshold against TN, high enough that unselected
  // LVT cells (FG at 0) stay several decades off.
  p.mos.vth0 = 1.18;
  // FeFET source/drain junctions are heavier than logic-NFET ones (thicker
  // gate stack, larger S/D): the "large devices" whose drain load the paper
  // contrasts with the 1.5T1Fe's single small TML on the match line.
  p.mos.cj_per_w = 2e-9;
  p.fe.ps = 0.20;
  p.fe.vc = 3.2;       // Vw = 1.25 * Vc = 4.0 V
  p.fe.vslope = 0.267;
  p.fe.area = p.mos.w * p.mos.l;
  p.fe.t_fe = 10e-9;
  p.mw_fg = 1.8;
  p.back_coupling = 0.15;  // plain FDSOI body
  p.double_gate = false;
  p.c_bg_factor = 0.5;
  return p;
}

FeFetParams dg_fefet_params() {
  FeFetParams p;
  p.mos = tech14::nfet();
  // MVT midpoint; LVT = 0.35, HVT = 1.25 (FG-referred).  Chosen so the
  // BG select drive (V_SeL/3 = 0.667 V FG-equivalent) satisfies the
  // 1.5T1Fe divider window at the co-optimized V_SeL = V_w = 2.0 V.
  p.mos.vth0 = 0.80;
  p.mos.cj_per_w = 8e-9;  // heavier than SG: the drain junction sits in the isolated P-well
  p.fe.ps = 0.20;
  p.fe.vc = 1.6;       // Vw = 2.0 V (co-optimized with V_SeL = 2.0 V)
  p.fe.vslope = 0.133;
  p.fe.area = p.mos.w * p.mos.l;
  p.fe.t_fe = 5e-9;
  p.mw_fg = 0.9;           // BG read window = 2.7 V
  p.back_coupling = 1.0 / 3.0;
  p.double_gate = true;
  p.c_bg_factor = 0.5;
  return p;
}

FeFetParams scale_fe_thickness(FeFetParams card, double scale) {
  if (scale == 1.0) return card;
  card.fe.t_fe *= scale;
  card.fe.vc *= scale;      // constant coercive field E_c
  card.mw_fg *= scale;      // dVth = P t_FE / eps_FE
  return card;
}

}  // namespace fetcam::dev
