#include "devices/tech14.hpp"

#include <cmath>

#include "devices/fefet.hpp"

namespace fetcam::dev::tech14 {

MosfetParams nfet(double w_mult, double l_mult) {
  MosfetParams p;
  p.polarity = Polarity::kN;
  p.w = kWmin * w_mult;
  p.l = kLmin * l_mult;
  p.vth0 = 0.30;
  p.n = 1.15;
  p.u0 = 0.020;
  p.cox = 0.0345;
  p.lambda = 0.05;
  p.theta = 1.2;
  p.gamma_b = 0.15;
  return p;
}

MosfetParams at_temperature(MosfetParams card, double kelvin) {
  const double t0 = 300.0;
  card.ut = 0.02585 * kelvin / t0;
  card.vth0 -= 0.8e-3 * (kelvin - t0);
  card.u0 *= std::pow(kelvin / t0, -1.5);
  return card;
}

MosfetParams pfet(double w_mult, double l_mult) {
  MosfetParams p;
  p.polarity = Polarity::kP;
  p.w = kWmin * w_mult;
  p.l = kLmin * l_mult;
  p.vth0 = 0.32;
  p.n = 1.18;
  p.u0 = 0.012;
  p.cox = 0.0345;
  p.lambda = 0.06;
  p.theta = 1.2;
  p.gamma_b = 0.15;
  return p;
}

FeFetParams fefet_at_temperature(FeFetParams card, double kelvin) {
  card.mos = at_temperature(card.mos, kelvin);
  // Ferroelectric coercivity softens toward the Curie point.
  card.fe.vc *= 1.0 - 1e-3 * (kelvin - 300.0);
  return card;
}

MosfetParams at_corner(MosfetParams card, Corner corner) {
  const double sign = corner == Corner::kSlow   ? 1.0
                      : corner == Corner::kFast ? -1.0
                                                : 0.0;
  card.vth0 += sign * 0.04;
  card.u0 *= 1.0 - sign * 0.08;
  return card;
}

FeFetParams fefet_at_corner(FeFetParams card, Corner corner) {
  card.mos = at_corner(card.mos, corner);
  return card;
}

}  // namespace fetcam::dev::tech14
