// Shared EKV-style channel-current core used by the MOSFET and FeFET models.
//
// Simplified source-referenced EKV formulation:
//
//   Id = g_mob(Vov) * Is * [ L^2(xf) - L^2(xr) ] * (1 + lambda * Vds)
//   xf = Vov / (2 n Ut),    xr = (Vov - n Vds) / (2 n Ut)
//   L(x) = ln(1 + e^x),     Vov = Vgs_eff - Vth
//   g_mob = 1 / (1 + theta * softplus(Vov))       (mobility degradation)
//
// Properties the TCAM circuits rely on and the tests verify:
//   * subthreshold slope SS = n Ut ln(10) per decade, smooth to strong
//     inversion (single expression, no regional stitching);
//   * saturation at Vds ~ Vov / n with quadratic Id(Vov);
//   * exact symmetry Id(Vgs, Vds) = -Id(Vgd, -Vds) handled by the callers
//     via source/drain swap.
//
// All derivatives are analytic; tests check them against finite differences.
#pragma once

#include <algorithm>
#include <cmath>

namespace fetcam::dev {

/// ln(1 + e^x) with large-|x| safe evaluation.
inline double softplus(double x) {
  if (x > 35.0) return x;
  if (x < -35.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

/// d softplus / dx = logistic sigmoid.
inline double sigmoid(double x) {
  if (x > 35.0) return 1.0;
  if (x < -35.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

struct EkvParams {
  double is = 1e-6;     ///< specific current 2 n mu Cox (W/L) Ut^2, amperes
  double n = 1.15;      ///< slope factor (SS = n Ut ln10)
  double ut = 0.02585;  ///< thermal voltage kT/q at 300 K, volts
  double lambda = 0.05; ///< channel-length modulation, 1/V
  double theta = 1.2;   ///< mobility degradation, 1/V
};

struct EkvResult {
  double id = 0.0;       ///< drain current (source-referenced, Vds >= 0)
  double did_dvov = 0.0; ///< d Id / d (gate overdrive)
  double did_dvds = 0.0; ///< d Id / d Vds
};

/// Evaluate the channel current for overdrive `vov` = Vgs_eff - Vth and
/// `vds` >= 0 (callers swap terminals for reverse operation).
inline EkvResult ekv_current(const EkvParams& p, double vov, double vds) {
  const double denom = 2.0 * p.n * p.ut;
  const double xf = vov / denom;
  const double xr = (vov - p.n * vds) / denom;

  const double lf = softplus(xf);
  const double lr = softplus(xr);
  const double sf = sigmoid(xf);
  const double sr = sigmoid(xr);

  const double a = lf * lf - lr * lr;
  const double da_dvov = (lf * sf - lr * sr) / (p.n * p.ut);
  const double da_dvds = lr * sr / p.ut;

  // Smooth mobility degradation on the forward overdrive.
  const double sp = p.ut * softplus(vov / p.ut);        // smooth max(vov, 0)
  const double dsp_dvov = sigmoid(vov / p.ut);
  const double g = 1.0 / (1.0 + p.theta * sp);
  const double dg_dvov = -p.theta * dsp_dvov * g * g;

  const double clm = 1.0 + p.lambda * vds;

  EkvResult r;
  r.id = g * p.is * a * clm;
  r.did_dvov = p.is * clm * (g * da_dvov + a * dg_dvov);
  r.did_dvds = p.is * (g * da_dvds * clm + g * a * p.lambda);
  return r;
}

}  // namespace fetcam::dev
