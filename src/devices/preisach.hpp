// Preisach-style ferroelectric polarization model with switching dynamics.
//
// The hysteresis loop is described by two saturating branch curves in the
// stack-voltage domain:
//
//   ascending  P_a(v) = Ps * tanh((v - Vc) / Vslope)   (lower bound)
//   descending P_d(v) = Ps * tanh((v + Vc) / Vslope)   (upper bound)
//
// Any polarization between the branches is a valid (history-dependent)
// state; outside the band the polarization relaxes exponentially toward the
// violated branch with a Merz-law accelerated time constant:
//
//   tau(v) = clamp(tau0 * exp(-(|v| - Vc)+ / Vact), tau_min, tau0)
//
// This reproduces the behaviours the TCAM designs exploit:
//   * full saturation at the nominal write voltage (|v| = Vw = 1.25 * Vc);
//   * deterministic *partial* polarization at the X-state write voltage
//     V_m = 0.8 * Vw = Vc (the three-step MVT write of the 1.5T1Fe cell);
//   * read-disturb-free operation while |v| stays well below Vc (the DG
//     back-gate read), and slow accumulating disturb when a read voltage
//     approaches Vc (the SG front-gate read issue the paper describes);
//   * minor loops and rate dependence.
#pragma once

#include <vector>

namespace fetcam::dev {

struct FerroParams {
  double ps = 0.20;        ///< saturation polarization, C/m^2 (20 uC/cm^2)
  double vc = 1.6;         ///< coercive voltage across the stack, V
  double vslope = 0.133;   ///< branch steepness, V
  double tau0 = 5e-9;      ///< switching time constant at v = Vc, s
  double v_act = 0.5;      ///< Merz acceleration voltage scale, V
  double tau_min = 0.2e-9; ///< fastest switching, s
  double area = 1e-15;     ///< ferroelectric area, m^2 (20 nm x 50 nm)
  double t_fe = 5e-9;      ///< ferroelectric thickness, m (reporting only)

  /// Nominal full write voltage associated with this card.
  double vw() const { return 1.25 * vc; }
};

/// Lower branch (reached by ascending voltage histories).
double branch_ascending(const FerroParams& p, double v);
/// Upper branch (reached by descending voltage histories).
double branch_descending(const FerroParams& p, double v);

/// Effective switching time constant at stack voltage v.
double switching_tau(const FerroParams& p, double v);

struct PolarizationStep {
  double p_end = 0.0;  ///< polarization after the step, C/m^2
  double dp_dv = 0.0;  ///< sensitivity of p_end to the end-of-step voltage
};

/// Advance the polarization from `p_prev` under stack voltage `v` held for
/// `dt` seconds.  Returns the new state and its voltage sensitivity (used by
/// the FeFET Jacobian stamp).
PolarizationStep advance_polarization(const FerroParams& p, double p_prev,
                                      double v, double dt);

/// Quasi-static loop tracing helper for characterization and tests: applies
/// the voltage sequence with a hold long enough to fully settle each point.
double settle_polarization(const FerroParams& p, double p_start, double v);

// ---------------------------------------------------------------------------
// Multi-level (FeCAM-style) programming.
//
// The deterministic partial-polarization mechanism the 1.5T1Fe X-state
// write already exploits (erase to -Psat, then settle onto the ascending
// branch at a sub-Vw voltage) generalizes to d-bit digits: 2^d evenly
// spaced polarization targets, each reached by one erase + one partial
// write whose amplitude is the ascending-branch inverse of the target.
// d = 1 degenerates to the existing binary write (write_voltage.back()
// == vw()), which is what ties the multi-bit CAM back to the paper's cell.

/// One d-bit programming table: level L (0-based, ascending polarization)
/// is written with write_voltage[L] after a full negative erase and
/// settles at polarization[L].
struct MultiLevelProgram {
  int bits = 1;                        ///< digit width d, in {1, 2, 3}
  std::vector<double> polarization;    ///< 2^d settled targets, ascending
  std::vector<double> write_voltage;   ///< partial-write amplitude per level
};

/// Build the programming table for d-bit cells.  Throws
/// std::invalid_argument("digit_bits ...") unless bits is in [1, 3].
MultiLevelProgram multi_level_program(const FerroParams& p, int bits);

/// Nearest programmed level for a read-back polarization (the sense
/// amp's quantizer).  Ties round down, matching a monotone V_TH ladder.
int quantize_level(const MultiLevelProgram& prog, double polarization);

/// Smallest polarization separation between adjacent levels — the margin
/// the sense path has to resolve.
double multi_level_margin(const MultiLevelProgram& prog);

/// V_TH shift produced by a stored polarization: dVth = P * t_fe / eps_fe
/// (charge sheet across the ferroelectric, HZO-like permittivity).
double level_vth_shift(const FerroParams& p, double polarization);

}  // namespace fetcam::dev
