#include "devices/preisach.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fetcam::dev {

double branch_ascending(const FerroParams& p, double v) {
  return p.ps * std::tanh((v - p.vc) / p.vslope);
}

double branch_descending(const FerroParams& p, double v) {
  return p.ps * std::tanh((v + p.vc) / p.vslope);
}

double switching_tau(const FerroParams& p, double v) {
  const double over = std::max(std::abs(v) - p.vc, 0.0);
  const double tau = p.tau0 * std::exp(-over / p.v_act);
  return std::clamp(tau, p.tau_min, p.tau0);
}

namespace {

/// d tau / d v, zero where the clamp is active.
double switching_tau_dv(const FerroParams& p, double v) {
  const double over = std::abs(v) - p.vc;
  if (over <= 0.0) return 0.0;
  const double tau = p.tau0 * std::exp(-over / p.v_act);
  if (tau <= p.tau_min) return 0.0;
  return -(v >= 0.0 ? 1.0 : -1.0) * tau / p.v_act;
}

}  // namespace

PolarizationStep advance_polarization(const FerroParams& p, double p_prev,
                                      double v, double dt) {
  PolarizationStep out;
  const double lo = branch_ascending(p, v);
  const double hi = branch_descending(p, v);
  // Branch slope dP/dv (same cosh for both up to the shifted argument).
  const auto branch_slope = [&](double center) {
    const double c = std::cosh((v - center) / p.vslope);
    return p.ps / (p.vslope * c * c);
  };

  // de/dv through the Merz-law tau: e = exp(-dt/tau(v)), de/dtau > 0.
  const auto de_dv = [&](double tau, double e) {
    return e * dt / (tau * tau) * switching_tau_dv(p, v);
  };

  if (p_prev < lo) {
    // Switching up toward the ascending branch.
    const double tau = switching_tau(p, v);
    const double e = std::exp(-dt / tau);
    out.p_end = lo + (p_prev - lo) * e;
    out.dp_dv = branch_slope(p.vc) * (1.0 - e) + (p_prev - lo) * de_dv(tau, e);
  } else if (p_prev > hi) {
    const double tau = switching_tau(p, v);
    const double e = std::exp(-dt / tau);
    out.p_end = hi + (p_prev - hi) * e;
    out.dp_dv = branch_slope(-p.vc) * (1.0 - e) + (p_prev - hi) * de_dv(tau, e);
  } else {
    out.p_end = p_prev;
    out.dp_dv = 0.0;
  }
  return out;
}

double settle_polarization(const FerroParams& p, double p_start, double v) {
  const double lo = branch_ascending(p, v);
  const double hi = branch_descending(p, v);
  return std::clamp(p_start, lo, hi);
}

MultiLevelProgram multi_level_program(const FerroParams& p, int bits) {
  if (bits < 1 || bits > 3) {
    throw std::invalid_argument("digit_bits must be in [1, 3]");
  }
  MultiLevelProgram prog;
  prog.bits = bits;
  const int levels = 1 << bits;
  // The saturation the nominal write reaches; all targets live inside
  // [-p_sat, +p_sat] so every level is writable from a full erase.
  const double p_sat = branch_ascending(p, p.vw());
  prog.polarization.reserve(static_cast<std::size_t>(levels));
  prog.write_voltage.reserve(static_cast<std::size_t>(levels));
  for (int level = 0; level < levels; ++level) {
    const double target =
        p_sat * (2.0 * static_cast<double>(level) /
                     static_cast<double>(levels - 1) -
                 1.0);
    // Ascending-branch inverse: the amplitude whose settled-from-below
    // polarization is exactly `target`.  level = levels-1 recovers vw().
    const double v = p.vc + p.vslope * std::atanh(target / p.ps);
    prog.polarization.push_back(settle_polarization(p, -p_sat, v));
    prog.write_voltage.push_back(v);
  }
  return prog;
}

int quantize_level(const MultiLevelProgram& prog, double polarization) {
  int best = 0;
  double best_err = std::abs(polarization - prog.polarization[0]);
  for (int level = 1; level < static_cast<int>(prog.polarization.size());
       ++level) {
    const double err =
        std::abs(polarization -
                 prog.polarization[static_cast<std::size_t>(level)]);
    if (err < best_err) {
      best_err = err;
      best = level;
    }
  }
  return best;
}

double multi_level_margin(const MultiLevelProgram& prog) {
  double margin = 0.0;
  for (std::size_t level = 1; level < prog.polarization.size(); ++level) {
    const double gap = prog.polarization[level] - prog.polarization[level - 1];
    if (level == 1 || gap < margin) margin = gap;
  }
  return margin;
}

double level_vth_shift(const FerroParams& p, double polarization) {
  constexpr double kEps0 = 8.854e-12;   // F/m
  constexpr double kEpsFeRel = 30.0;    // HZO-like relative permittivity
  return polarization * p.t_fe / (kEps0 * kEpsFeRel);
}

}  // namespace fetcam::dev
