#include "devices/preisach.hpp"

#include <algorithm>
#include <cmath>

namespace fetcam::dev {

double branch_ascending(const FerroParams& p, double v) {
  return p.ps * std::tanh((v - p.vc) / p.vslope);
}

double branch_descending(const FerroParams& p, double v) {
  return p.ps * std::tanh((v + p.vc) / p.vslope);
}

double switching_tau(const FerroParams& p, double v) {
  const double over = std::max(std::abs(v) - p.vc, 0.0);
  const double tau = p.tau0 * std::exp(-over / p.v_act);
  return std::clamp(tau, p.tau_min, p.tau0);
}

namespace {

/// d tau / d v, zero where the clamp is active.
double switching_tau_dv(const FerroParams& p, double v) {
  const double over = std::abs(v) - p.vc;
  if (over <= 0.0) return 0.0;
  const double tau = p.tau0 * std::exp(-over / p.v_act);
  if (tau <= p.tau_min) return 0.0;
  return -(v >= 0.0 ? 1.0 : -1.0) * tau / p.v_act;
}

}  // namespace

PolarizationStep advance_polarization(const FerroParams& p, double p_prev,
                                      double v, double dt) {
  PolarizationStep out;
  const double lo = branch_ascending(p, v);
  const double hi = branch_descending(p, v);
  // Branch slope dP/dv (same cosh for both up to the shifted argument).
  const auto branch_slope = [&](double center) {
    const double c = std::cosh((v - center) / p.vslope);
    return p.ps / (p.vslope * c * c);
  };

  // de/dv through the Merz-law tau: e = exp(-dt/tau(v)), de/dtau > 0.
  const auto de_dv = [&](double tau, double e) {
    return e * dt / (tau * tau) * switching_tau_dv(p, v);
  };

  if (p_prev < lo) {
    // Switching up toward the ascending branch.
    const double tau = switching_tau(p, v);
    const double e = std::exp(-dt / tau);
    out.p_end = lo + (p_prev - lo) * e;
    out.dp_dv = branch_slope(p.vc) * (1.0 - e) + (p_prev - lo) * de_dv(tau, e);
  } else if (p_prev > hi) {
    const double tau = switching_tau(p, v);
    const double e = std::exp(-dt / tau);
    out.p_end = hi + (p_prev - hi) * e;
    out.dp_dv = branch_slope(-p.vc) * (1.0 - e) + (p_prev - hi) * de_dv(tau, e);
  } else {
    out.p_end = p_prev;
    out.dp_dv = 0.0;
  }
  return out;
}

double settle_polarization(const FerroParams& p, double p_start, double v) {
  const double lo = branch_ascending(p, v);
  const double hi = branch_descending(p, v);
  return std::clamp(p_start, lo, hi);
}

}  // namespace fetcam::dev
