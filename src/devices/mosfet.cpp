#include "devices/mosfet.hpp"

#include <cmath>

namespace fetcam::dev {

Mosfet::Mosfet(std::string name, spice::NodeId d, spice::NodeId g,
               spice::NodeId s, spice::NodeId b, MosfetParams params)
    : Device(std::move(name)),
      d_(d),
      g_(g),
      s_(s),
      b_(b),
      params_(params),
      cgs_(params.cgs()),
      cgd_(params.cgd()),
      cgb_(params.cgb()),
      cdb_(params.cjunction()),
      csb_(params.cjunction()) {}

Mosfet::ChannelEval Mosfet::eval_channel(double vd, double vg, double vs,
                                         double vb) const {
  // Transform to NFET-like space; derivative signs cancel on the way back
  // (see the PFET mirroring note below).
  const double sign = params_.polarity == Polarity::kN ? 1.0 : -1.0;
  const double svd = sign * vd;
  const double svg = sign * vg;
  const double svs = sign * vs;
  const double svb = sign * vb;

  // Source/drain swap for reverse conduction keeps the model symmetric.
  const bool swapped = svd < svs;
  const double v_hi = swapped ? svs : svd;
  const double v_lo = swapped ? svd : svs;
  const double vds = v_hi - v_lo;
  const double vgs_eff = (svg - v_lo) + params_.gamma_b * (svb - v_lo);
  const double vov = vgs_eff - params_.vth0;

  const EkvResult r = ekv_current(params_.ekv(), vov, vds);

  // In transformed space, current of magnitude r.id flows hi -> lo.
  // Real current D -> S is sign * (hi==D ? +id : -id).
  // Derivatives w.r.t. real voltages: the two sign factors cancel, so we can
  // assemble them directly in transformed space.
  ChannelEval out;
  const double dir = swapped ? -1.0 : 1.0;  // hi->lo mapped onto D->S
  out.current = sign * dir * r.id;

  const double dI_dvhi = r.did_dvds;
  const double dI_dvlo = -r.did_dvov * (1.0 + params_.gamma_b) - r.did_dvds;
  const double dI_dvg = r.did_dvov;
  const double dI_dvb = params_.gamma_b * r.did_dvov;

  // I(D->S) in transformed coordinates = dir * id(hi, lo, g, b).
  const double dId_dsvd = dir * (swapped ? dI_dvlo : dI_dvhi);
  const double dId_dsvs = dir * (swapped ? dI_dvhi : dI_dvlo);
  const double dId_dsvg = dir * dI_dvg;
  const double dId_dsvb = dir * dI_dvb;

  // d(real I)/d(real V) = sign * dId_dsv * sign = dId_dsv.
  out.dI_dVd = dId_dsvd;
  out.dI_dVs = dId_dsvs;
  out.dI_dVg = dId_dsvg;
  out.dI_dVb = dId_dsvb;
  return out;
}

void Mosfet::stamp(const spice::EvalContext& ctx, spice::Stamper& st) const {
  const ChannelEval ch =
      eval_channel(st.v(d_), st.v(g_), st.v(s_), st.v(b_));
  st.add_current(d_, s_, ch.current);
  st.add_current_derivative(d_, s_, d_, ch.dI_dVd);
  st.add_current_derivative(d_, s_, g_, ch.dI_dVg);
  st.add_current_derivative(d_, s_, s_, ch.dI_dVs);
  st.add_current_derivative(d_, s_, b_, ch.dI_dVb);

  // gmin keeps high-impedance nodes (e.g. an OFF pass-gate's far side)
  // numerically anchored.
  st.add_gmin(d_, ctx.gmin);
  st.add_gmin(s_, ctx.gmin);

  cgs_.stamp(ctx, st, g_, s_);
  cgd_.stamp(ctx, st, g_, d_);
  cgb_.stamp(ctx, st, g_, b_);
  cdb_.stamp(ctx, st, d_, b_);
  csb_.stamp(ctx, st, s_, b_);
}

void Mosfet::initialize_state(const spice::EvalContext& ctx,
                              const spice::Solution& sol) {
  (void)ctx;
  cgs_.initialize(sol, g_, s_);
  cgd_.initialize(sol, g_, d_);
  cgb_.initialize(sol, g_, b_);
  cdb_.initialize(sol, d_, b_);
  csb_.initialize(sol, s_, b_);
}

void Mosfet::commit_step(const spice::EvalContext& ctx,
                         const spice::Solution& sol) {
  cgs_.commit(ctx, sol, g_, s_);
  cgd_.commit(ctx, sol, g_, d_);
  cgb_.commit(ctx, sol, g_, b_);
  cdb_.commit(ctx, sol, d_, b_);
  csb_.commit(ctx, sol, s_, b_);
}

double Mosfet::drain_current(const spice::Solution& sol) const {
  return eval_channel(sol.v(d_), sol.v(g_), sol.v(s_), sol.v(b_)).current;
}

double Mosfet::on_resistance(const spice::Solution& sol) const {
  const double vds = sol.v(d_) - sol.v(s_);
  const double id = drain_current(sol);
  const double i_floor = 1e-15;
  return std::abs(vds) / std::max(std::abs(id), i_floor);
}

}  // namespace fetcam::dev
