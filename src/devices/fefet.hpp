// FeFET compact model: EKV channel + Preisach ferroelectric gate stack.
//
// One class covers both device flavours of the paper:
//
//  * SG-FeFET — 10 nm ferroelectric on the front gate, written and read from
//    the FG (+/-4 V write, MW = 1.8 V).  The 4th terminal is the FDSOI body
//    with weak coupling (back_coupling ~ 0.15).
//  * DG-FeFET — 5 nm ferroelectric on the front gate, written from the FG
//    (+/-2 V) and read from the dedicated back gate.  back_coupling = 1/3:
//    the BG is a 3x weaker gate, which simultaneously *amplifies* the memory
//    window seen from the BG (0.9 V -> 2.7 V) and *degrades* the BG
//    subthreshold slope by 3x — the device trade-off at the heart of the
//    paper (Fig. 1d and the 2DG-FeFET TCAM latency penalty).
//
// Channel drive: Vg_eff = (V_FG - V_src) + back_coupling * (V_BG - V_src).
// Threshold: Vth_eff = vth_mid - (P / Ps) * (mw_fg / 2); polarization P
// evolves per the Preisach model under the FG-to-channel voltage, so write
// pulses, partial (MVT) writes, and read disturb all emerge from the
// transient simulation rather than from scripted state changes.
#pragma once

#include "devices/cap_companion.hpp"
#include "devices/ekv_core.hpp"
#include "devices/mosfet.hpp"
#include "devices/preisach.hpp"

namespace fetcam::dev {

struct FeFetParams {
  MosfetParams mos;        ///< channel card; mos.vth0 is the MVT midpoint
  FerroParams fe;
  double mw_fg = 0.9;      ///< full Vth window seen from the FG, volts
  double back_coupling = 1.0 / 3.0;  ///< 4th-terminal gate strength
  bool double_gate = true;           ///< reporting flag (SG vs DG)
  double c_bg_factor = 1.0;  ///< BG capacitance relative to the FG stack cap
  /// Gate-independent channel leakage (junction/GIDL floor), siemens.  This
  /// floor — not the subthreshold current — sets the ~1e4 ON/OFF ratio the
  /// paper quotes for the DG back-gate read (Fig. 1d).
  double g_leak = 1e-9;
  /// Source-side junction capacitance per width, F/m.  Asymmetric from the
  /// drain (mos.cj_per_w): the drain lands on a long metal line (large
  /// junction + via stack), while the source is a small shared diffusion.
  /// In the 1.5T1Fe cell the source junction couples the SeL well edge into
  /// SL_bar, so keeping it small is part of the cell design.
  double cj_source_per_w = 5e-10;

  /// Memory window seen from the 4th terminal (BG read for DG devices).
  double mw_bg() const { return mw_fg / back_coupling; }
  /// Nominal full write voltage.
  double vw() const { return fe.vw(); }
  /// Threshold (FG-referred) for a given normalized polarization in [-1, 1].
  double vth_for(double p_norm) const {
    return mos.vth0 - p_norm * mw_fg / 2.0;
  }
  /// Write voltage that programs (quasi-statically, from the erased state)
  /// the polarization needed for an FG-referred target threshold.
  double write_voltage_for_vth(double vth_target) const;
};

/// Ternary memory states of one FeFET as used by the TCAM designs.
enum class FeState {
  kHvt,  ///< erased, P = -Ps ('0' in 1.5T1Fe encoding)
  kMvt,  ///< partially polarized ('X')
  kLvt,  ///< programmed, P = +Ps ('1')
};

class FeFet : public spice::Device {
 public:
  /// Terminals: drain, front gate, source, back gate.
  FeFet(std::string name, spice::NodeId d, spice::NodeId fg, spice::NodeId s,
        spice::NodeId bg, FeFetParams params);

  std::string_view kind() const override { return "fefet"; }
  void stamp(const spice::EvalContext& ctx, spice::Stamper& st) const override;
  void initialize_state(const spice::EvalContext& ctx,
                        const spice::Solution& sol) override;
  void commit_step(const spice::EvalContext& ctx,
                   const spice::Solution& sol) override;
  std::vector<spice::NodeId> terminals() const override {
    return {d_, fg_, s_, bg_};
  }

  const FeFetParams& params() const { return params_; }

  /// Polarization, C/m^2.
  double polarization() const { return p_; }
  /// Polarization normalized to [-1, 1].
  double normalized_polarization() const { return p_ / params_.fe.ps; }
  /// Current FG-referred threshold voltage.
  double threshold_voltage() const {
    return params_.vth_for(normalized_polarization());
  }

  /// Directly set the stored state (bypasses the write transient) — used to
  /// initialize arrays quickly; the write path itself is exercised by the
  /// write-controller simulations and tests.
  void set_state(FeState s, double mvt_vth_target);
  void set_polarization(double p);

  /// Channel current D -> S at the given solution, amperes.
  double drain_current(const spice::Solution& sol) const;
  double on_resistance(const spice::Solution& sol) const;

 private:
  struct ChannelEval {
    double current = 0.0;
    double dI_dVd = 0.0, dI_dVfg = 0.0, dI_dVs = 0.0, dI_dVbg = 0.0;
  };
  ChannelEval eval_channel(double vd, double vfg, double vs, double vbg) const;
  double fe_drive_voltage(double vfg, double vd, double vs) const {
    return vfg - 0.5 * (vd + vs);
  }

  spice::NodeId d_, fg_, s_, bg_;
  FeFetParams params_;
  double p_ = 0.0;  ///< committed polarization, C/m^2
  CapCompanion cfg_s_, cfg_d_, cbg_s_, cdb_, csb_;
};

/// Thickness-scaled card: t_FE, the coercive voltage (E_c t_FE constant
/// field) and the FG memory window (P t_FE / eps charge sheet) scale
/// linearly with `scale` to first order; channel card, Ps, and switching
/// dynamics are unchanged.  scale = 1 returns the card bit-identical.
FeFetParams scale_fe_thickness(FeFetParams card, double scale);

/// SG-FeFET card: 10 nm FE, +/-4 V write, MW 1.8 V, FG read.
FeFetParams sg_fefet_params();
/// DG-FeFET card: 5 nm FE, +/-2 V write, MW(FG) 0.9 V, MW(BG) 2.7 V.
FeFetParams dg_fefet_params();

}  // namespace fetcam::dev
