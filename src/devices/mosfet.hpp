// Four-terminal MOSFET (D, G, S, B) built on the EKV core, with linear
// gate/overlap/junction capacitances as internal companion models.
//
// The model targets 14 nm FDSOI behaviour at the fidelity the paper's TCAM
// analysis consumes: smooth subthreshold-to-saturation I-V, realistic SS and
// on/off ratio, body coupling (used as the FDSOI back-bias terminal), and
// terminal capacitances that load the match line.
#pragma once

#include <array>

#include "devices/cap_companion.hpp"
#include "devices/ekv_core.hpp"
#include "spice/circuit.hpp"

namespace fetcam::dev {

enum class Polarity { kN, kP };

struct MosfetParams {
  Polarity polarity = Polarity::kN;
  double w = 50e-9;  ///< channel width, m
  double l = 20e-9;  ///< channel length, m
  double vth0 = 0.30;  ///< |threshold|, V
  double n = 1.15;     ///< slope factor
  double u0 = 0.020;   ///< low-field mobility, m^2/Vs
  double cox = 0.0345; ///< gate capacitance density, F/m^2
  double lambda = 0.05;
  double theta = 1.2;
  double gamma_b = 0.15;     ///< back-bias (body) coupling to the channel
  double cov_per_w = 3e-10;  ///< G-S/G-D overlap cap per width, F/m
  double cj_per_w = 5e-10;   ///< junction cap per width, F/m

  double ut = 0.02585;

  double specific_current() const {
    return 2.0 * n * u0 * cox * (w / l) * ut * ut;
  }
  EkvParams ekv() const {
    return {.is = specific_current(), .n = n, .ut = ut, .lambda = lambda,
            .theta = theta};
  }
  double cgate() const { return cox * w * l; }
  /// Source side carries the channel charge (saturation-weighted split).
  double cgs() const { return 0.5 * cgate() + cov_per_w * w; }
  /// Drain side is overlap/fringe only: in saturation the channel charge
  /// detaches from the drain, and modeling half the oxide capacitance there
  /// would grossly exaggerate Miller coupling from gate edges into
  /// high-impedance drains (e.g. the Wr/SL -> SL_bar kick through the
  /// long-channel TP/TN of the 1.5T1Fe pair).
  double cgd() const { return cov_per_w * w; }
  double cgb() const { return 0.3 * cgate(); }
  double cjunction() const { return cj_per_w * w; }
};

class Mosfet : public spice::Device {
 public:
  Mosfet(std::string name, spice::NodeId d, spice::NodeId g, spice::NodeId s,
         spice::NodeId b, MosfetParams params);

  std::string_view kind() const override { return "mosfet"; }
  void stamp(const spice::EvalContext& ctx, spice::Stamper& st) const override;
  void initialize_state(const spice::EvalContext& ctx,
                        const spice::Solution& sol) override;
  void commit_step(const spice::EvalContext& ctx,
                   const spice::Solution& sol) override;
  std::vector<spice::NodeId> terminals() const override {
    return {d_, g_, s_, b_};
  }

  const MosfetParams& params() const { return params_; }

  /// Channel current D -> S at the given solution (amperes, signed).
  double drain_current(const spice::Solution& sol) const;

  /// Effective small-signal on-resistance at the given bias (V/I with a
  /// floor to avoid division blow-ups at zero current).
  double on_resistance(const spice::Solution& sol) const;

 private:
  struct ChannelEval {
    double current = 0.0;  // D -> S
    double dI_dVd = 0.0, dI_dVg = 0.0, dI_dVs = 0.0, dI_dVb = 0.0;
  };
  ChannelEval eval_channel(double vd, double vg, double vs, double vb) const;

  spice::NodeId d_, g_, s_, b_;
  MosfetParams params_;
  CapCompanion cgs_, cgd_, cgb_, cdb_, csb_;
};

}  // namespace fetcam::dev
