// Reusable linear-capacitor companion model for device-internal parasitics
// (gate, overlap, and junction capacitances inside MOSFET/FeFET models).
//
// Mirrors spice::Capacitor but as an embeddable member so a device can carry
// several capacitances without polluting the netlist with extra elements.
#pragma once

#include "spice/circuit.hpp"

namespace fetcam::dev {

class CapCompanion {
 public:
  CapCompanion() = default;
  explicit CapCompanion(double farads) : c_(farads) {}

  double capacitance() const { return c_; }

  void stamp(const spice::EvalContext& ctx, spice::Stamper& st,
             spice::NodeId a, spice::NodeId b) const {
    if (ctx.mode == spice::AnalysisMode::kOperatingPoint || c_ == 0.0) return;
    const double vab = st.v(a) - st.v(b);
    const double geq = (ctx.trapezoidal ? 2.0 : 1.0) * c_ / ctx.dt;
    st.add_current(a, b, current(ctx, vab));
    st.add_current_derivative(a, b, a, geq);
    st.add_current_derivative(a, b, b, -geq);
  }

  void initialize(const spice::Solution& sol, spice::NodeId a,
                  spice::NodeId b) {
    v_prev_ = sol.v(a) - sol.v(b);
    i_prev_ = 0.0;
  }

  void commit(const spice::EvalContext& ctx, const spice::Solution& sol,
              spice::NodeId a, spice::NodeId b) {
    const double vab = sol.v(a) - sol.v(b);
    i_prev_ = current(ctx, vab);
    v_prev_ = vab;
  }

 private:
  double current(const spice::EvalContext& ctx, double vab) const {
    if (ctx.trapezoidal) return 2.0 * c_ / ctx.dt * (vab - v_prev_) - i_prev_;
    return c_ / ctx.dt * (vab - v_prev_);
  }

  double c_ = 0.0;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

}  // namespace fetcam::dev
