// Scalar tier + dispatch of the packed approximate-match kernels.  The
// scalar loop is the golden reference (the AVX2 tier and the behavioral
// arch::approx_search are validated against it and each other by
// tests/engine/approx_kernel_test.cpp).
#include "engine/approx_kernel.hpp"

#include <bit>
#include <stdexcept>

namespace fetcam::engine {

namespace detail {

namespace {

constexpr std::uint64_t kEvenDigits = 0x5555555555555555ULL;
/// Digit-start masks for d = 3, indexed by the word's phase
/// (3 - w % 3) % 3: bits i with (64w + i) % 3 == 0.
constexpr std::uint64_t kThirdMask[3] = {
    0x9249249249249249ULL,  // bits 0, 3, ..., 63
    0x2492492492492492ULL,  // bits 1, 4, ..., 61
    0x4924924924924924ULL,  // bits 2, 5, ..., 62
};

}  // namespace

std::uint64_t collapse_digits(std::uint64_t mis, std::uint64_t next, int w,
                              int digit_bits) {
  switch (digit_bits) {
    case 1:
      return mis;
    case 2:
      // 64 % 2 == 0: groups never straddle words, `next` is irrelevant.
      return (mis | (mis >> 1)) & kEvenDigits;
    case 3: {
      // Groups straddle word boundaries: pull the next word's low bits
      // into the straddling group's start position, then keep only the
      // starts whose global bit index is a multiple of 3.  64 ≡ 1 (mod
      // 3), so the start offset cycles with w mod 3.
      const std::uint64_t gather = mis | ((mis >> 1) | (next << 63)) |
                                   ((mis >> 2) | (next << 62));
      return gather & kThirdMask[(3 - w % 3) % 3];
    }
    default:
      throw std::invalid_argument("digit_bits must be in [1, 3]");
  }
}

arch::SearchStats approx_match_scalar(const ShardView& s,
                                      const std::uint64_t* query,
                                      int digit_bits, int threshold,
                                      std::uint64_t* within_mask,
                                      std::uint16_t* distances) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  stats.step2_evaluated = s.rows;  // single-step accounting
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  for (int i = 0; i < s.rows_pad; ++i) {
    distances[static_cast<std::size_t>(i)] = kDistanceOverflow;
  }
  for (int b = 0; b < blocks; ++b) {
    const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
    std::uint64_t ok = 0;
    const int real_rows = s.rows - b * 64 < 64 ? s.rows - b * 64 : 64;
    for (int i = 0; i < real_rows; ++i) {
      if (((valid >> i) & 1ULL) == 0) continue;  // erased rows never match
      const std::size_t r = static_cast<std::size_t>(b) * 64 +
                            static_cast<std::size_t>(i);
      int dist = 0;
      std::uint64_t next = s.care[r] & (s.value[r] ^ query[0]);
      for (int w = 0; w < s.wpr; ++w) {
        const std::uint64_t mis = next;
        if (w + 1 < s.wpr) {
          const std::size_t at = static_cast<std::size_t>(w + 1) * pad + r;
          next = s.care[at] & (s.value[at] ^ query[w + 1]);
        } else {
          next = 0;
        }
        dist += std::popcount(collapse_digits(mis, next, w, digit_bits));
        if (dist > threshold) break;  // outcome settled: row is too far
      }
      if (dist <= threshold) {
        ok |= 1ULL << i;
        distances[r] = static_cast<std::uint16_t>(dist);
      }
    }
    within_mask[static_cast<std::size_t>(b)] = ok;
    stats.matches += std::popcount(ok);
  }
  return stats;
}

void approx_match_block_scalar(const ShardView& s,
                               const std::uint64_t* const* queries, int nq,
                               int digit_bits, int threshold,
                               std::uint64_t* const* within_masks,
                               std::uint16_t* const* distances,
                               arch::SearchStats* stats) {
  if (nq < 1 || nq > kMaxQueryBlock) {
    throw std::invalid_argument("block size out of range");
  }
  for (int q = 0; q < nq; ++q) {
    stats[q] = approx_match_scalar(s, queries[q], digit_bits, threshold,
                                   within_masks[q], distances[q]);
  }
}

}  // namespace detail

namespace {

void check_approx_args(const PackedShard& shard, const PackedQuery& query,
                       int digit_bits, int threshold) {
  if (digit_bits < 1 || digit_bits > 3) {
    throw std::invalid_argument("digit_bits must be in [1, 3]");
  }
  if (shard.cols() % digit_bits != 0) {
    throw std::invalid_argument("cols must be a multiple of digit_bits");
  }
  if (threshold < 0) {
    throw std::invalid_argument("distance_threshold must be >= 0");
  }
  if (query.cols != shard.cols()) {
    throw std::invalid_argument("query width mismatch");
  }
}

}  // namespace

arch::SearchStats approx_match(const PackedShard& shard,
                               const PackedQuery& query, int digit_bits,
                               int threshold,
                               std::vector<std::uint64_t>& within_mask,
                               std::vector<std::uint16_t>& distances) {
  return approx_match(shard, query, digit_bits, threshold, within_mask,
                      distances, active_kernel_tier());
}

arch::SearchStats approx_match(const PackedShard& shard,
                               const PackedQuery& query, int digit_bits,
                               int threshold,
                               std::vector<std::uint64_t>& within_mask,
                               std::vector<std::uint16_t>& distances,
                               KernelTier tier) {
  check_approx_args(shard, query, digit_bits, threshold);
  within_mask.assign(shard.mask_words(), 0);
  distances.assign(shard.mask_words() * 64, kDistanceOverflow);
  if (shard.rows() == 0) {
    arch::SearchStats stats;
    return stats;
  }
  const detail::ShardView s = shard.view();
  switch (tier) {
    case KernelTier::kAvx2:
#if defined(FETCAM_HAVE_AVX2)
      return detail::approx_match_avx2(s, query.bits.data(), digit_bits,
                                       threshold, within_mask.data(),
                                       distances.data());
#else
      break;
#endif
    case KernelTier::kScalar:
      break;
  }
  return detail::approx_match_scalar(s, query.bits.data(), digit_bits,
                                     threshold, within_mask.data(),
                                     distances.data());
}

#if !defined(FETCAM_HAVE_AVX2)

namespace detail {

// Scalar stubs so non-SIMD builds link; never selected at runtime
// (kernel_tier_available(kAvx2) is false without FETCAM_HAVE_AVX2).
arch::SearchStats approx_match_avx2(const ShardView& s,
                                    const std::uint64_t* query,
                                    int digit_bits, int threshold,
                                    std::uint64_t* within_mask,
                                    std::uint16_t* distances) {
  return approx_match_scalar(s, query, digit_bits, threshold, within_mask,
                             distances);
}

void approx_match_block_avx2(const ShardView& s,
                             const std::uint64_t* const* queries, int nq,
                             int digit_bits, int threshold,
                             std::uint64_t* const* within_masks,
                             std::uint16_t* const* distances,
                             arch::SearchStats* stats) {
  approx_match_block_scalar(s, queries, nq, digit_bits, threshold,
                            within_masks, distances, stats);
}

}  // namespace detail

#endif  // !FETCAM_HAVE_AVX2

}  // namespace fetcam::engine
