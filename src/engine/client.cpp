#include "engine/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace fetcam::engine {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

SearchClient::~SearchClient() { close(); }

void SearchClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::invalid_argument("bad client host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SearchClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

void SearchClient::send_all(const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void SearchClient::send_batch(const std::vector<arch::BitWord>& queries,
                              int cols) {
  if (fd_ < 0) throw std::runtime_error("client is not connected");
  wire::SearchBatchFrame frame;
  frame.words_per_query = static_cast<std::uint32_t>((cols + 63) / 64);
  frame.bits.assign(queries.size() * frame.words_per_query, 0);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const arch::BitWord& query = queries[q];
    if (static_cast<int>(query.size()) != cols) {
      throw std::invalid_argument("query width mismatch");
    }
    std::uint64_t* words = frame.bits.data() + q * frame.words_per_query;
    for (int c = 0; c < cols; ++c) {
      if (query[static_cast<std::size_t>(c)] != 0) {
        words[c >> 6] |= 1ULL << (c & 63);
      }
    }
  }
  std::vector<std::uint8_t> out;
  wire::encode_search_batch(out, frame);
  send_all(out.data(), out.size());
}

void SearchClient::send_nearest_batch(
    const std::vector<arch::BitWord>& queries, int cols, int k,
    int threshold) {
  if (fd_ < 0) throw std::runtime_error("client is not connected");
  if (k < 1) throw std::invalid_argument("k must be >= 1");
  if (threshold < 0) {
    throw std::invalid_argument("distance_threshold must be >= 0");
  }
  wire::NearestBatchFrame frame;
  frame.words_per_query = static_cast<std::uint32_t>((cols + 63) / 64);
  frame.k = static_cast<std::uint32_t>(k);
  frame.threshold = static_cast<std::uint32_t>(threshold);
  frame.bits.assign(queries.size() * frame.words_per_query, 0);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const arch::BitWord& query = queries[q];
    if (static_cast<int>(query.size()) != cols) {
      throw std::invalid_argument("query width mismatch");
    }
    std::uint64_t* words = frame.bits.data() + q * frame.words_per_query;
    for (int c = 0; c < cols; ++c) {
      if (query[static_cast<std::size_t>(c)] != 0) {
        words[c >> 6] |= 1ULL << (c & 63);
      }
    }
  }
  std::vector<std::uint8_t> out;
  wire::encode_nearest_batch(out, frame);
  send_all(out.data(), out.size());
}

void SearchClient::send_raw(const void* data, std::size_t len) {
  if (fd_ < 0) throw std::runtime_error("client is not connected");
  send_all(static_cast<const std::uint8_t*>(data), len);
}

void SearchClient::recv_exact(std::size_t n) {
  while (rx_.size() < n) {
    std::uint8_t buf[16384];
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got > 0) {
      rx_.insert(rx_.end(), buf, buf + got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0) throw_errno("recv");
    throw std::runtime_error("server closed the connection");
  }
}

SearchClient::Reply SearchClient::recv_reply() {
  if (fd_ < 0) throw std::runtime_error("client is not connected");
  recv_exact(wire::kHeaderSize);
  std::optional<wire::ErrorCode> header_error;
  const wire::FrameHeader header =
      wire::decode_header(rx_.data(), header_error);
  if (header_error) {
    throw std::runtime_error("garbage frame header from server");
  }
  recv_exact(wire::kHeaderSize + header.payload_len);
  const std::uint8_t* payload = rx_.data() + wire::kHeaderSize;
  Reply reply;
  if (header.type == wire::FrameType::kSearchResult) {
    auto records = wire::decode_search_result(payload, header.payload_len);
    if (!records) {
      throw std::runtime_error("malformed result frame from server");
    }
    reply.ok = true;
    reply.records = std::move(*records);
  } else if (header.type == wire::FrameType::kNearestResult) {
    auto lists = wire::decode_nearest_result(payload, header.payload_len);
    if (!lists) {
      throw std::runtime_error("malformed nearest frame from server");
    }
    reply.ok = true;
    reply.is_nearest = true;
    reply.neighbors = std::move(*lists);
  } else if (header.type == wire::FrameType::kStatsResult) {
    reply.ok = true;
    reply.is_stats = true;
    reply.stats_json = wire::decode_stats_result(payload, header.payload_len);
  } else if (header.type == wire::FrameType::kError) {
    auto err = wire::decode_error(payload, header.payload_len);
    if (!err) throw std::runtime_error("malformed error frame from server");
    reply.ok = false;
    reply.error = std::move(*err);
  } else {
    throw std::runtime_error("unexpected frame type from server");
  }
  rx_.erase(rx_.begin(),
            rx_.begin() + static_cast<std::ptrdiff_t>(wire::kHeaderSize +
                                                      header.payload_len));
  return reply;
}

void SearchClient::send_stats_request() {
  if (fd_ < 0) throw std::runtime_error("client is not connected");
  std::vector<std::uint8_t> out;
  wire::encode_stats_request(out);
  send_all(out.data(), out.size());
}

std::string SearchClient::stats() {
  send_stats_request();
  Reply reply = recv_reply();
  if (!reply.ok) {
    throw std::runtime_error("server error " +
                             std::to_string(static_cast<std::uint32_t>(
                                 reply.error.code)) +
                             ": " + reply.error.message);
  }
  if (!reply.is_stats) {
    throw std::runtime_error("expected a stats reply, got a search result");
  }
  return std::move(reply.stats_json);
}

std::vector<wire::ResultRecord> SearchClient::search(
    const std::vector<arch::BitWord>& queries, int cols) {
  send_batch(queries, cols);
  Reply reply = recv_reply();
  if (!reply.ok) {
    throw std::runtime_error("server error " +
                             std::to_string(static_cast<std::uint32_t>(
                                 reply.error.code)) +
                             ": " + reply.error.message);
  }
  return std::move(reply.records);
}

std::vector<std::vector<wire::NearestRecord>> SearchClient::search_nearest(
    const std::vector<arch::BitWord>& queries, int cols, int k,
    int threshold) {
  send_nearest_batch(queries, cols, k, threshold);
  Reply reply = recv_reply();
  if (!reply.ok) {
    throw std::runtime_error("server error " +
                             std::to_string(static_cast<std::uint32_t>(
                                 reply.error.code)) +
                             ": " + reply.error.message);
  }
  if (!reply.is_nearest) {
    throw std::runtime_error("expected a nearest reply");
  }
  return std::move(reply.neighbors);
}

}  // namespace fetcam::engine
