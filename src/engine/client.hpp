// Blocking client for the TCAM search service (wire.hpp protocol).
//
// One connection, synchronous framing: send_batch() writes a kSearchBatch
// frame, recv_reply() blocks for the next response frame.  Pipelining is
// explicit — call send_batch() N times, then recv_reply() N times; the
// server answers strictly in request order, so the k-th reply belongs to
// the k-th batch.  search() is the send+recv convenience.
//
// send_raw() exists for the fault-injection tests: it pushes arbitrary
// bytes at the server, which a well-behaved client never needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/ternary.hpp"
#include "engine/wire.hpp"

namespace fetcam::engine {

class SearchClient {
 public:
  SearchClient() = default;
  ~SearchClient();  ///< closes the socket

  SearchClient(const SearchClient&) = delete;
  SearchClient& operator=(const SearchClient&) = delete;

  /// Connect to a running SearchServer.  Throws std::system_error.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// One reply frame: a result batch, a stats snapshot, or a server error
  /// frame.
  struct Reply {
    bool ok = false;  ///< true = kSearchResult / kStatsResult / kNearestResult
    bool is_stats = false;  ///< true = kStatsResult (stats_json is set)
    bool is_nearest = false;  ///< true = kNearestResult (neighbors is set)
    std::vector<wire::ResultRecord> records;
    /// kNearestResult: per query, ascending by (distance, priority, id).
    std::vector<std::vector<wire::NearestRecord>> neighbors;
    std::string stats_json;
    wire::ErrorFrame error;
  };

  /// Pack + send one kSearchBatch frame.  Every query must be `cols` bits
  /// wide.  Throws on socket failure.
  void send_batch(const std::vector<arch::BitWord>& queries, int cols);
  /// Pack + send one kNearest frame: top-`k` stored words within
  /// `threshold` mismatching digits of each query.
  void send_nearest_batch(const std::vector<arch::BitWord>& queries, int cols,
                          int k, int threshold);
  /// Push arbitrary bytes (fault-injection only).
  void send_raw(const void* data, std::size_t len);
  /// Block for the next reply frame.  Throws std::runtime_error if the
  /// server closes the connection mid-frame or sends garbage.
  Reply recv_reply();
  /// send_batch + recv_reply; throws std::runtime_error on a server error
  /// frame (message includes the server's).
  std::vector<wire::ResultRecord> search(
      const std::vector<arch::BitWord>& queries, int cols);
  /// send_nearest_batch + recv_reply; throws std::runtime_error on a
  /// server error frame.  One candidate list per query, request order.
  std::vector<std::vector<wire::NearestRecord>> search_nearest(
      const std::vector<arch::BitWord>& queries, int cols, int k,
      int threshold);
  /// Send one kStats scrape frame (empty payload).
  void send_stats_request();
  /// send_stats_request + recv_reply: the live stats snapshot JSON
  /// (engine/stats.hpp schema "fetcam.stats.v1").  Throws
  /// std::runtime_error on a server error frame.
  std::string stats();

 private:
  void send_all(const std::uint8_t* data, std::size_t len);
  /// Read exactly n bytes into rx_ starting at its current size.
  void recv_exact(std::size_t n);

  int fd_ = -1;
  std::vector<std::uint8_t> rx_;
};

}  // namespace fetcam::engine
