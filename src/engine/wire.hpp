// Binary wire protocol for the TCAM search service (server.hpp /
// client.hpp).  Little-endian, length-prefixed frames:
//
//   offset  size  field
//   0       4     magic        0xFE7CA301
//   4       1     version      1
//   5       1     type         FrameType
//   6       2     reserved     must be 0
//   8       4     payload_len  bytes following the 12-byte header
//
// kSearchBatch payload (client -> server):
//   u32 count            queries in the batch
//   u32 words_per_query  64-bit words per packed query
//   count * words_per_query * u64   query bits, bit c of the query at
//                                   word c/64, bit c%64 (PackedQuery
//                                   layout — zero marshalling on either
//                                   side of a packed kernel)
//
// kSearchResult payload (server -> client), one 13-byte record per query
// in request order:
//   u8  hit
//   i64 entry id
//   i32 priority
//
// kError payload: u32 code (ErrorCode) + UTF-8 message.  A malformed
// frame earns an error frame and closes THAT connection only; framing
// errors never tear down the server or other connections.
//
// kStats (client -> server) has an EMPTY payload (payload_len must be 0;
// anything else is kMalformed).  The server answers with kStatsResult,
// whose payload is the UTF-8 stats snapshot JSON (engine/stats.hpp,
// schema "fetcam.stats.v1").  Stats replies share the connection's
// response pipeline with search results, so a scrape observes every
// frame the same connection submitted before it as already applied.
//
// kNearest payload (client -> server) — threshold kNN batch:
//   u32 count            queries in the batch
//   u32 words_per_query  64-bit words per packed query
//   u32 k                neighbors requested per query (>= 1)
//   u32 threshold        max mismatching digits for a candidate
//   count * words_per_query * u64   query bits (PackedQuery layout)
//
// kNearestResult payload (server -> client), per query in request order:
//   u32 n                candidates returned (<= k)
//   n * { u64 entry id, i32 priority, u32 distance }   ascending by
//                        (distance, priority, id)
//
// The protocol is deliberately minimal: searches, kNN and stats scrapes
// only.  Mutations go through the compiler/applier path, not the wire —
// the service tier is a read path (docs/ENGINE.md section 8).
// Frame-type validity and request/response direction are decided by
// is_known_frame / is_request_frame below — the ONE validation point —
// so adding an opcode can never silently widen what a server accepts.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fetcam::engine::wire {

constexpr std::uint32_t kMagic = 0xFE7CA301u;
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 12;
/// Frames larger than this are rejected with kErrOversized before any
/// payload is buffered (a garbage length cannot balloon server memory).
constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kSearchBatch = 1,
  kSearchResult = 2,
  kError = 3,
  kStats = 4,          ///< stats scrape request (empty payload)
  kStatsResult = 5,    ///< stats snapshot JSON (UTF-8)
  kNearest = 6,        ///< threshold-kNN batch request
  kNearestResult = 7,  ///< per-query top-k candidate lists
};

/// The single frame-type whitelist.  decode_header rejects anything else
/// as kBadType, so every consumer inherits uniform unknown-opcode
/// rejection from one place.
inline bool is_known_frame(FrameType t) {
  switch (t) {
    case FrameType::kSearchBatch:
    case FrameType::kSearchResult:
    case FrameType::kError:
    case FrameType::kStats:
    case FrameType::kStatsResult:
    case FrameType::kNearest:
    case FrameType::kNearestResult:
      return true;
  }
  return false;
}

/// Client -> server direction.  The server consults this right after the
/// header decodes — a known-but-response-direction type (e.g. a client
/// echoing kSearchResult back) is rejected before any payload is waited
/// for, with the same kBadType error as an unknown opcode.
inline bool is_request_frame(FrameType t) {
  return t == FrameType::kSearchBatch || t == FrameType::kStats ||
         t == FrameType::kNearest;
}

enum class ErrorCode : std::uint32_t {
  kBadMagic = 1,
  kBadVersion = 2,
  kBadType = 3,
  kOversized = 4,
  kMalformed = 5,   ///< payload doesn't parse (truncated counts, ...)
  kBadWidth = 6,    ///< words_per_query doesn't match the table
  kShuttingDown = 7,
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kVersion;
  FrameType type = FrameType::kSearchBatch;
  std::uint32_t payload_len = 0;
};

struct SearchBatchFrame {
  std::uint32_t words_per_query = 0;
  /// count * words_per_query words, query-major.
  std::vector<std::uint64_t> bits;
  std::uint32_t count() const {
    return words_per_query == 0
               ? 0
               : static_cast<std::uint32_t>(bits.size() / words_per_query);
  }
};

struct ResultRecord {
  std::uint8_t hit = 0;
  std::int64_t entry = -1;
  std::int32_t priority = 0;
};

/// Largest k a kNearest request may carry: bounds the response frame a
/// single request can demand (together with the count/k/payload check in
/// decode_nearest_batch, a reply can never exceed kMaxPayload).
constexpr std::uint32_t kMaxNearestK = 1024;

struct NearestBatchFrame {
  std::uint32_t words_per_query = 0;
  std::uint32_t k = 1;          ///< neighbors per query (1..kMaxNearestK)
  std::uint32_t threshold = 0;  ///< max mismatching digits
  /// count * words_per_query words, query-major (PackedQuery layout).
  std::vector<std::uint64_t> bits;
  std::uint32_t count() const {
    return words_per_query == 0
               ? 0
               : static_cast<std::uint32_t>(bits.size() / words_per_query);
  }
};

/// One kNN candidate on the wire (16 bytes; ascending by
/// (distance, priority, id) within its query's list).
struct NearestRecord {
  std::int64_t entry = -1;
  std::int32_t priority = 0;
  std::uint32_t distance = 0;
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kMalformed;
  std::string message;
};

// ---- little-endian primitives -------------------------------------------

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// ---- header --------------------------------------------------------------

inline void encode_header(std::vector<std::uint8_t>& out, FrameType type,
                          std::uint32_t payload_len) {
  put_u32(out, kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);
  put_u32(out, payload_len);
}

/// Parse the 12 header bytes at `p`.  Returns the header even on
/// validation failure; `error` reports the first violated rule (nullopt =
/// header is acceptable).  payload_len is NOT range-checked against the
/// buffer here — the caller streams the payload in afterwards.
inline FrameHeader decode_header(const std::uint8_t* p,
                                 std::optional<ErrorCode>& error) {
  FrameHeader h;
  h.magic = get_u32(p);
  h.version = p[4];
  h.type = static_cast<FrameType>(p[5]);
  h.payload_len = get_u32(p + 8);
  error.reset();
  if (h.magic != kMagic) {
    error = ErrorCode::kBadMagic;
  } else if (h.version != kVersion) {
    error = ErrorCode::kBadVersion;
  } else if (!is_known_frame(h.type)) {
    error = ErrorCode::kBadType;
  } else if (h.payload_len > kMaxPayload) {
    error = ErrorCode::kOversized;
  }
  return h;
}

// ---- frames --------------------------------------------------------------

inline void encode_search_batch(std::vector<std::uint8_t>& out,
                                const SearchBatchFrame& frame) {
  const std::uint32_t payload =
      8 + static_cast<std::uint32_t>(frame.bits.size()) * 8;
  encode_header(out, FrameType::kSearchBatch, payload);
  put_u32(out, frame.count());
  put_u32(out, frame.words_per_query);
  for (const std::uint64_t w : frame.bits) put_u64(out, w);
}

/// Decode a kSearchBatch payload (header already validated/stripped).
inline std::optional<SearchBatchFrame> decode_search_batch(
    const std::uint8_t* payload, std::size_t len) {
  if (len < 8) return std::nullopt;
  const std::uint32_t count = get_u32(payload);
  const std::uint32_t wpq = get_u32(payload + 4);
  if (count > 0 && wpq == 0) return std::nullopt;
  // count * wpq is exact in u64 (both factors < 2^32), but `words * 8`
  // can wrap — e.g. count = 2^31, wpq = 2^30 gives words = 2^61, whose
  // byte size is 0 mod 2^64 and would slip past the length check into a
  // 2^61-word resize.  Bound words by the bytes actually present first.
  const std::uint64_t words = static_cast<std::uint64_t>(count) * wpq;
  if (words > (len - 8) / 8) return std::nullopt;
  if (len != 8 + words * 8) return std::nullopt;
  SearchBatchFrame frame;
  frame.words_per_query = wpq;
  frame.bits.resize(words);
  for (std::uint64_t i = 0; i < words; ++i) {
    frame.bits[i] = get_u64(payload + 8 + i * 8);
  }
  return frame;
}

inline void encode_search_result(std::vector<std::uint8_t>& out,
                                 const std::vector<ResultRecord>& records) {
  const std::uint32_t payload =
      4 + static_cast<std::uint32_t>(records.size()) * 13;
  encode_header(out, FrameType::kSearchResult, payload);
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const ResultRecord& r : records) {
    out.push_back(r.hit);
    put_u64(out, static_cast<std::uint64_t>(r.entry));
    put_u32(out, static_cast<std::uint32_t>(r.priority));
  }
}

inline std::optional<std::vector<ResultRecord>> decode_search_result(
    const std::uint8_t* payload, std::size_t len) {
  if (len < 4) return std::nullopt;
  const std::uint32_t count = get_u32(payload);
  if (len != 4 + static_cast<std::uint64_t>(count) * 13) return std::nullopt;
  std::vector<ResultRecord> records(count);
  const std::uint8_t* p = payload + 4;
  for (std::uint32_t i = 0; i < count; ++i, p += 13) {
    records[i].hit = p[0];
    records[i].entry = static_cast<std::int64_t>(get_u64(p + 1));
    records[i].priority = static_cast<std::int32_t>(get_u32(p + 9));
  }
  return records;
}

inline void encode_nearest_batch(std::vector<std::uint8_t>& out,
                                 const NearestBatchFrame& frame) {
  const std::uint32_t payload =
      16 + static_cast<std::uint32_t>(frame.bits.size()) * 8;
  encode_header(out, FrameType::kNearest, payload);
  put_u32(out, frame.count());
  put_u32(out, frame.words_per_query);
  put_u32(out, frame.k);
  put_u32(out, frame.threshold);
  for (const std::uint64_t w : frame.bits) put_u64(out, w);
}

/// Decode a kNearest payload (header already validated/stripped).
inline std::optional<NearestBatchFrame> decode_nearest_batch(
    const std::uint8_t* payload, std::size_t len) {
  if (len < 16) return std::nullopt;
  const std::uint32_t count = get_u32(payload);
  const std::uint32_t wpq = get_u32(payload + 4);
  const std::uint32_t k = get_u32(payload + 8);
  const std::uint32_t threshold = get_u32(payload + 12);
  if (count > 0 && wpq == 0) return std::nullopt;
  if (k < 1 || k > kMaxNearestK) return std::nullopt;
  // Same u64-first overflow discipline as decode_search_batch: bound the
  // word count by the bytes actually present before any multiply-by-8.
  const std::uint64_t words = static_cast<std::uint64_t>(count) * wpq;
  if (words > (len - 16) / 8) return std::nullopt;
  if (len != 16 + words * 8) return std::nullopt;
  // Reject requests whose worst-case reply (k full candidate lists per
  // query) could not be framed — the response length is checked here, on
  // the request, so the server never builds an unsendable reply.
  const std::uint64_t reply_worst =
      4 + static_cast<std::uint64_t>(count) *
              (4 + static_cast<std::uint64_t>(k) * 16);
  if (reply_worst > kMaxPayload) return std::nullopt;
  NearestBatchFrame frame;
  frame.words_per_query = wpq;
  frame.k = k;
  frame.threshold = threshold;
  frame.bits.resize(words);
  for (std::uint64_t i = 0; i < words; ++i) {
    frame.bits[i] = get_u64(payload + 16 + i * 8);
  }
  return frame;
}

inline void encode_nearest_result(
    std::vector<std::uint8_t>& out,
    const std::vector<std::vector<NearestRecord>>& queries) {
  std::uint64_t payload = 4;
  for (const auto& q : queries) payload += 4 + q.size() * 16;
  encode_header(out, FrameType::kNearestResult,
                static_cast<std::uint32_t>(payload));
  put_u32(out, static_cast<std::uint32_t>(queries.size()));
  for (const auto& q : queries) {
    put_u32(out, static_cast<std::uint32_t>(q.size()));
    for (const NearestRecord& r : q) {
      put_u64(out, static_cast<std::uint64_t>(r.entry));
      put_u32(out, static_cast<std::uint32_t>(r.priority));
      put_u32(out, r.distance);
    }
  }
}

inline std::optional<std::vector<std::vector<NearestRecord>>>
decode_nearest_result(const std::uint8_t* payload, std::size_t len) {
  if (len < 4) return std::nullopt;
  const std::uint32_t count = get_u32(payload);
  std::vector<std::vector<NearestRecord>> queries;
  queries.reserve(count);
  std::size_t off = 4;
  for (std::uint32_t q = 0; q < count; ++q) {
    if (len - off < 4) return std::nullopt;
    const std::uint32_t n = get_u32(payload + off);
    off += 4;
    if (n > (len - off) / 16) return std::nullopt;
    std::vector<NearestRecord> records(n);
    for (std::uint32_t i = 0; i < n; ++i, off += 16) {
      records[i].entry = static_cast<std::int64_t>(get_u64(payload + off));
      records[i].priority =
          static_cast<std::int32_t>(get_u32(payload + off + 8));
      records[i].distance = get_u32(payload + off + 12);
    }
    queries.push_back(std::move(records));
  }
  if (off != len) return std::nullopt;
  return queries;
}

inline void encode_stats_request(std::vector<std::uint8_t>& out) {
  encode_header(out, FrameType::kStats, 0);
}

inline void encode_stats_result(std::vector<std::uint8_t>& out,
                                std::string_view json) {
  encode_header(out, FrameType::kStatsResult,
                static_cast<std::uint32_t>(json.size()));
  for (const char c : json) out.push_back(static_cast<std::uint8_t>(c));
}

inline std::string decode_stats_result(const std::uint8_t* payload,
                                       std::size_t len) {
  return std::string(reinterpret_cast<const char*>(payload), len);
}

inline void encode_error(std::vector<std::uint8_t>& out,
                         const ErrorFrame& err) {
  const std::uint32_t payload =
      4 + static_cast<std::uint32_t>(err.message.size());
  encode_header(out, FrameType::kError, payload);
  put_u32(out, static_cast<std::uint32_t>(err.code));
  for (const char c : err.message) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
}

inline std::optional<ErrorFrame> decode_error(const std::uint8_t* payload,
                                              std::size_t len) {
  if (len < 4) return std::nullopt;
  ErrorFrame err;
  err.code = static_cast<ErrorCode>(get_u32(payload));
  err.message.assign(reinterpret_cast<const char*>(payload + 4), len - 4);
  return err;
}

}  // namespace fetcam::engine::wire
