#include "engine/engine.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace fetcam::engine {

namespace {

struct EngineMetrics {
  obs::Counter& batches;
  obs::Counter& requests;
  obs::Counter& searches;
  obs::Counter& nearest;
  obs::Counter& writes;
  obs::Counter& driver_stalls;
  obs::Counter& write_cycles;
  obs::Counter& windows;
  obs::Counter& mats_considered;
  obs::Counter& mats_skipped;
  obs::Gauge& queue_hwm;
  obs::Gauge& queue_depth;
  obs::Gauge& in_flight;
  // Per-stage request attribution (docs/OBSERVABILITY.md stage catalog).
  obs::LatencyRecorder& queue_wait;
  obs::LatencyRecorder& coalesce_delay;
  /// Phase-A latency per kernel tier, indexed by KernelTier.
  obs::LatencyRecorder* match_tier[2];
  obs::LatencyRecorder& merge;
  obs::LatencyRecorder& apply;
  obs::LatencyRecorder& batch_total;
  /// Digit-distance histogram of nearest-search winners.  Distances are
  /// recorded as raw bucket values (LatencyRecorder's log buckets double
  /// as a cheap fixed-memory histogram), riding fetcam.stats.v1 stages.
  obs::LatencyRecorder& near_distance;

  static EngineMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static EngineMetrics m{
        reg.counter("engine.batches"),
        reg.counter("engine.requests"),
        reg.counter("engine.searches"),
        reg.counter("engine.nearest"),
        reg.counter("engine.writes"),
        reg.counter("engine.driver_stalls"),
        reg.counter("engine.write_cycles"),
        reg.counter("engine.windows"),
        reg.counter("engine.mats_considered"),
        reg.counter("engine.mats_skipped"),
        reg.gauge("engine.queue_high_watermark"),
        reg.gauge("engine.queue.depth"),
        reg.gauge("engine.in_flight"),
        reg.latency("engine.stage.queue_wait"),
        reg.latency("engine.stage.coalesce_delay"),
        {&reg.latency("engine.stage.match.scalar"),
         &reg.latency("engine.stage.match.avx2")},
        reg.latency("engine.stage.merge"),
        reg.latency("engine.stage.apply"),
        reg.latency("engine.batch.total"),
        reg.latency("engine.near_distance"),
    };
    return m;
  }
};

bool is_pure_search(const std::vector<Request>& batch) {
  for (const Request& r : batch) {
    if (r.kind != RequestKind::kSearch &&
        r.kind != RequestKind::kSearchNearest) {
      return false;
    }
  }
  return true;
}

}  // namespace

EngineOptions SearchEngine::validate_options(EngineOptions options) {
  if (options.queue_capacity == 0) {
    throw std::invalid_argument(
        "EngineOptions.queue_capacity must be > 0 (a zero-capacity queue "
        "can never admit a batch)");
  }
  if (options.mat_groups <= 0) {
    throw std::invalid_argument(
        "EngineOptions.mat_groups must be > 0, got " +
        std::to_string(options.mat_groups));
  }
  if (options.dispatch_threads < 0) {
    throw std::invalid_argument(
        "EngineOptions.dispatch_threads must be >= 0 (0 = auto via "
        "util::thread_count()), got " +
        std::to_string(options.dispatch_threads));
  }
  if (options.coalesce_batches == 0) {
    throw std::invalid_argument(
        "EngineOptions.coalesce_batches must be > 0 (every window drains "
        "at least one batch)");
  }
  if (options.query_block < 1 || options.query_block > kMaxQueryBlock) {
    throw std::invalid_argument(
        "EngineOptions.query_block must be in [1, " +
        std::to_string(kMaxQueryBlock) + "], got " +
        std::to_string(options.query_block));
  }
  if (options.k < 1) {
    throw std::invalid_argument("EngineOptions.k must be >= 1, got " +
                                std::to_string(options.k));
  }
  if (options.distance_threshold < 0) {
    throw std::invalid_argument(
        "EngineOptions.distance_threshold must be >= 0, got " +
        std::to_string(options.distance_threshold));
  }
  return options;
}

SearchEngine::SearchEngine(TcamTable& table, EngineOptions options)
    : table_(table),
      options_(validate_options(options)),
      queue_(options_.queue_capacity) {
  const TableConfig& cfg = table.config();
  mat_groups_ = std::clamp(options_.mat_groups, 1, cfg.mats);
  dispatch_threads_ = options_.dispatch_threads > 0
                          ? options_.dispatch_threads
                          : util::thread_count();
  if (dispatch_threads_ < 1) dispatch_threads_ = 1;
  // Contiguous, near-even group split: group g covers
  // [g*mats/G, (g+1)*mats/G) — fixed at construction, so the fold order
  // (and with it every merged result) is a pure function of the config.
  group_bounds_.resize(static_cast<std::size_t>(mat_groups_) + 1);
  for (int g = 0; g <= mat_groups_; ++g) {
    group_bounds_[static_cast<std::size_t>(g)] =
        static_cast<int>(static_cast<long long>(g) * cfg.mats / mat_groups_);
  }
  group_match_lat_.resize(static_cast<std::size_t>(mat_groups_));
  for (int g = 0; g < mat_groups_; ++g) {
    group_match_lat_[static_cast<std::size_t>(g)] =
        &obs::MetricsRegistry::instance().latency(
            "engine.stage.match.group" + std::to_string(g));
  }
  // Don't attribute pre-engine pruning activity to this engine's registry
  // counters.
  last_mats_considered_ = table.mats_considered();
  last_mats_skipped_ = table.mats_skipped();
  arch::MatGeometry geom;
  geom.rows = cfg.rows_per_mat / cfg.subarrays_per_mat;
  geom.cols = cfg.cols;
  geom.subarrays = cfg.subarrays_per_mat;
  mat_schedulers_.reserve(static_cast<std::size_t>(cfg.mats));
  for (int m = 0; m < cfg.mats; ++m) {
    mat_schedulers_.emplace_back(geom, arch::HvDriverParams{});
  }
  helpers_.reserve(static_cast<std::size_t>(dispatch_threads_ - 1));
  for (int t = 1; t < dispatch_threads_; ++t) {
    helpers_.emplace_back([this] { helper_loop(); });
  }
  coordinator_ = std::thread([this] { coordinator_loop(); });
}

SearchEngine::~SearchEngine() {
  queue_.close();
  if (coordinator_.joinable()) coordinator_.join();
  {
    const std::lock_guard<std::mutex> lock(round_mu_);
    pool_stop_ = true;
  }
  round_cv_.notify_all();
  for (std::thread& t : helpers_) {
    if (t.joinable()) t.join();
  }
}

std::future<BatchResult> SearchEngine::submit(std::vector<Request> batch,
                                              std::uint64_t trace_id) {
  Work work;
  work.batch = std::move(batch);
  work.trace_id = trace_id;
  if (obs::metrics_on()) work.submit_ns = obs::now_ns();
  std::future<BatchResult> future = work.promise.get_future();
  // Sequence assignment and queue insertion happen under one lock so the
  // FIFO queue order IS the sequence order (the determinism contract).
  const std::lock_guard<std::mutex> lock(submit_mu_);
  work.seq = next_seq_++;
  submitted_.fetch_add(1, std::memory_order_release);
  if (!queue_.push(std::move(work))) {
    // Engine shut down: nothing will ever complete this batch, so undo the
    // in-flight accounting before handing back a broken future.
    completed_.fetch_add(1, std::memory_order_release);
    // The promise was moved into the dropped Work, so recreate a
    // broken-promise future explicitly.
    std::promise<BatchResult> broken;
    broken.set_exception(std::make_exception_ptr(
        std::runtime_error("engine is shut down")));
    return broken.get_future();
  }
  return future;
}

BatchResult SearchEngine::execute(std::vector<Request> batch) {
  return submit(std::move(batch)).get();
}

void SearchEngine::drain() {
  // An empty batch flushes: batches apply in order, so once it resolves
  // every earlier batch has been applied.
  execute({});
}

double SearchEngine::mat_utilization(int mat) const {
  return mat_schedulers_[static_cast<std::size_t>(mat)].utilization();
}

void SearchEngine::helper_loop() {
  std::uint64_t seen = 0;
  std::shared_ptr<Round> round;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(round_mu_);
      round_cv_.wait(lock, [&] { return pool_stop_ || round_gen_ != seen; });
      if (pool_stop_) return;
      seen = round_gen_;
      round = round_;
    }
    for (;;) {
      const std::size_t i =
          round->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= round->count) break;
      (*round->fn)(i);
      if (round->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          round->count) {
        const std::lock_guard<std::mutex> lock(round->mu);
        round->cv.notify_all();
      }
    }
    round.reset();
  }
}

void SearchEngine::run_round(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (helpers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto round = std::make_shared<Round>();
  round->fn = &fn;
  round->count = count;
  {
    const std::lock_guard<std::mutex> lock(round_mu_);
    round_ = round;
    ++round_gen_;
  }
  round_cv_.notify_all();
  // The coordinator is dispatcher #0: it claims tasks alongside the
  // helpers instead of idling on the wait.
  for (;;) {
    const std::size_t i = round->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= round->count) break;
    (*round->fn)(i);
    if (round->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        round->count) {
      const std::lock_guard<std::mutex> lock(round->mu);
      round->cv.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(round->mu);
  round->cv.wait(lock, [&] {
    return round->done.load(std::memory_order_acquire) == round->count;
  });
}

void SearchEngine::coordinator_loop() {
  for (;;) {
    std::vector<Work> window = queue_.pop_some(options_.coalesce_batches);
    if (window.empty()) return;  // closed and drained
    std::uint64_t dequeue_ns = 0;
    if (obs::metrics_on()) {
      dequeue_ns = obs::now_ns();
      auto& em = EngineMetrics::get();
      em.queue_depth.set(static_cast<double>(queue_.size()));
      em.in_flight.set(static_cast<double>(in_flight()));
      for (const Work& w : window) {
        if (w.submit_ns != 0 && dequeue_ns > w.submit_ns) {
          em.queue_wait.record_ns(dequeue_ns - w.submit_ns);
        }
      }
    }
    std::size_t begin = 0;
    while (begin < window.size()) {
      // Coalescing rule: extend the sub-window through pure-search
      // batches; the first batch carrying a mutation closes it.  All
      // matches in the sub-window therefore see the same table state a
      // batch-at-a-time coordinator would have shown them.
      std::size_t end = begin;
      while (end < window.size()) {
        const bool pure = is_pure_search(window[end].batch);
        ++end;
        if (!pure) break;
      }
      const double t0 = obs::now_us();
      if (dequeue_ns != 0 && obs::metrics_on()) {
        // Time a batch waited past its dequeue for earlier sub-windows of
        // the same coalesced window to finish.
        const std::uint64_t sub_start_ns = obs::now_ns();
        auto& em = EngineMetrics::get();
        for (std::size_t w = begin; w < end; ++w) {
          em.coalesce_delay.record_ns(sub_start_ns - dequeue_ns);
        }
      }
      std::vector<std::vector<TableMatch>> matches;
      std::vector<std::vector<NearestMatch>> nears;
      match_window(window, begin, end, matches, nears);
      // Count the window before resolving its promises, so a caller that
      // blocks on execute() observes the window as processed.
      windows_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metrics_on()) EngineMetrics::get().windows.add();
      for (std::size_t w = begin; w < end; ++w) {
        obs::ScopedSpan span("engine.apply", "engine", window[w].trace_id);
        BatchResult res =
            apply(window[w], matches[w - begin], nears[w - begin], t0);
        // Count the completion BEFORE resolving the future so a caller that
        // has waited on every future observes in_flight() == 0
        // deterministically (the transient is a brief under-report, never
        // an underflow: completed_ trails its own submitted_ increment).
        completed_.fetch_add(1, std::memory_order_release);
        window[w].promise.set_value(std::move(res));
      }
      begin = end;
    }
    if (obs::metrics_on()) {
      auto& em = EngineMetrics::get();
      em.queue_depth.set(static_cast<double>(queue_.size()));
      em.in_flight.set(static_cast<double>(in_flight()));
    }
  }
}

void SearchEngine::match_window(
    std::vector<Work>& works, std::size_t begin, std::size_t end,
    std::vector<std::vector<TableMatch>>& matches,
    std::vector<std::vector<NearestMatch>>& nears) {
  matches.resize(end - begin);
  nears.resize(end - begin);
  struct SearchRef {
    std::size_t w = 0;  ///< index into works
    std::size_t i = 0;  ///< request index within its batch
  };
  struct NearestRef {
    std::size_t w = 0;
    std::size_t i = 0;
    int k = 1;          ///< resolved (engine default applied)
    int threshold = 0;  ///< resolved (engine default applied)
  };
  std::vector<SearchRef> searches;
  std::vector<NearestRef> nearest;
  for (std::size_t w = begin; w < end; ++w) {
    matches[w - begin].resize(works[w].batch.size());
    nears[w - begin].resize(works[w].batch.size());
    for (std::size_t i = 0; i < works[w].batch.size(); ++i) {
      const Request& req = works[w].batch[i];
      if (req.kind == RequestKind::kSearch) {
        searches.push_back({w, i});
      } else if (req.kind == RequestKind::kSearchNearest) {
        NearestRef ref;
        ref.w = w;
        ref.i = i;
        // Request-level overrides; non-positive / negative values defer to
        // the validated engine defaults, so the table layer only ever sees
        // legal (k, threshold) pairs.
        ref.k = req.k > 0 ? req.k : options_.k;
        ref.threshold = req.distance_threshold >= 0
                            ? req.distance_threshold
                            : options_.distance_threshold;
        nearest.push_back(ref);
      }
    }
  }
  if (searches.empty() && nearest.empty()) return;

  // Pack every search lane once per window (nearest lanes after exact
  // ones).  Each of the G mat-group tasks touching a block previously
  // re-packed the same queries, so this removes a G-fold redundant
  // digit-to-bit conversion from the hot path (coordinator-only state;
  // tasks read the packs immutably).
  if (packed_queries_.size() < searches.size() + nearest.size()) {
    packed_queries_.resize(searches.size() + nearest.size());
  }
  for (std::size_t s = 0; s < searches.size(); ++s) {
    const SearchRef& ref = searches[s];
    packed_queries_[s].repack(works[ref.w].batch[ref.i].query);
  }
  for (std::size_t s = 0; s < nearest.size(); ++s) {
    const NearestRef& ref = nearest[s];
    packed_queries_[searches.size() + s].repack(
        works[ref.w].batch[ref.i].query);
  }

  // Phase A fan-out.  The window's searches are chunked into fixed
  // submission-order blocks of `query_block` lanes; task k =
  // (block k/G, group k%G).  Every partial writes its own pre-indexed
  // slot, so the claim schedule is invisible — and because per-lane
  // results never depend on block composition (table.cpp), neither is
  // the block size: any B yields the same partials, hence the same fold.
  const std::size_t groups = static_cast<std::size_t>(mat_groups_);
  const std::size_t block = static_cast<std::size_t>(options_.query_block);
  const std::size_t blocks = (searches.size() + block - 1) / block;
  const std::size_t exact_tasks = blocks * groups;
  std::vector<TableMatch> partials(searches.size() * groups);
  std::vector<NearestMatch> near_partials(nearest.size() * groups);
  const std::function<void(std::size_t)> task = [&](std::size_t k) {
    if (k >= exact_tasks) {
      // Nearest fan-out: task (s, g) scans one mat group for one query.
      // Same pre-indexed-slot discipline as the exact path; the kernels
      // are per-query streams, so there is no block dimension here.
      const std::size_t n = k - exact_tasks;
      const std::size_t s = n / groups;
      const std::size_t g = n % groups;
      const NearestRef& ref = nearest[s];
      const bool timed = obs::metrics_on();
      const std::uint64_t t0_ns = timed ? obs::now_ns() : 0;
      obs::ScopedSpan span("engine.near_task", "engine",
                           works[ref.w].trace_id);
      thread_local NearestScratch scratch;
      table_.nearest_mats(packed_queries_[searches.size() + s], ref.k,
                          ref.threshold, group_bounds_[g],
                          group_bounds_[g + 1], scratch,
                          near_partials[s * groups + g]);
      if (timed) group_match_lat_[g]->record_ns(obs::now_ns() - t0_ns);
      return;
    }
    const std::size_t s0 = (k / groups) * block;
    const std::size_t s1 = std::min(s0 + block, searches.size());
    const std::size_t g = k % groups;
    const bool timed = obs::metrics_on();
    const std::uint64_t t0_ns = timed ? obs::now_ns() : 0;
    obs::ScopedSpan span("engine.match_task", "engine",
                         works[searches[s0].w].trace_id);
    if (s1 - s0 == 1) {
      // Single lane (block size 1, or the window's tail): the scalar
      // single-query path — also the golden reference the blocked path
      // must reproduce bit for bit.
      thread_local MatchScratch scratch;
      table_.match_mats(packed_queries_[s0], group_bounds_[g],
                        group_bounds_[g + 1], scratch,
                        partials[s0 * groups + g]);
    } else {
      thread_local BlockMatchScratch scratch;
      const PackedQuery* queries[kMaxQueryBlock];
      TableMatch* outs[kMaxQueryBlock];
      for (std::size_t s = s0; s < s1; ++s) {
        queries[s - s0] = &packed_queries_[s];
        outs[s - s0] = &partials[s * groups + g];
      }
      table_.match_mats_block(queries, static_cast<int>(s1 - s0),
                              group_bounds_[g], group_bounds_[g + 1],
                              scratch, outs);
    }
    if (timed) group_match_lat_[g]->record_ns(obs::now_ns() - t0_ns);
  };
  const bool metrics = obs::metrics_on();
  const std::uint64_t a0_ns = metrics ? obs::now_ns() : 0;
  run_round(exact_tasks + nearest.size() * groups, task);
  std::uint64_t a1_ns = 0;
  if (metrics) {
    a1_ns = obs::now_ns();
    EngineMetrics::get()
        .match_tier[static_cast<int>(active_kernel_tier())]
        ->record_ns(a1_ns - a0_ns);
  }

  // Fixed group-order fold: merge_match resolves by (priority, id), so
  // the merged winner equals the single-dispatcher broadcast bit for bit.
  for (std::size_t s = 0; s < searches.size(); ++s) {
    TableMatch& out = matches[searches[s].w - begin][searches[s].i];
    out = std::move(partials[s * groups]);
    for (std::size_t g = 1; g < groups; ++g) {
      merge_match(out, partials[s * groups + g]);
    }
  }
  // Same fixed-order fold for nearest partials: merge_nearest's sorted
  // k-truncating merge over the strict (distance, priority, id) order is
  // associative, so the global top-k equals the single-group scan's.
  for (std::size_t s = 0; s < nearest.size(); ++s) {
    NearestMatch& out = nears[nearest[s].w - begin][nearest[s].i];
    out = std::move(near_partials[s * groups]);
    for (std::size_t g = 1; g < groups; ++g) {
      merge_nearest(out, near_partials[s * groups + g], nearest[s].k);
    }
  }
  if (metrics) EngineMetrics::get().merge.record_ns(obs::now_ns() - a1_ns);
}

BatchResult SearchEngine::apply(Work& work, std::vector<TableMatch>& matches,
                                std::vector<NearestMatch>& nears, double t0) {
  std::vector<Request>& batch = work.batch;
  const bool metrics = obs::metrics_on();
  const std::uint64_t apply0_ns = metrics ? obs::now_ns() : 0;
  BatchResult res;
  res.seq = work.seq;
  res.results.resize(batch.size());
  std::size_t n_search = 0;
  std::size_t n_nearest = 0;

  // Phase B — serial application in request order: accounting, writes,
  // erases.  This ordering (not the dispatcher schedule) defines the
  // energy / endurance / stats totals.
  struct PendingWrite {
    int mat = 0;
    int subarray = 0;
    int phases = 0;
  };
  std::vector<PendingWrite> pending_writes;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& req = batch[i];
    RequestResult& out = res.results[i];
    switch (req.kind) {
      case RequestKind::kSearch: {
        const TableMatch& m = matches[i];
        ++n_search;
        table_.account_search(m);
        out.hit = m.hit;
        out.entry = m.entry;
        out.priority = m.priority;
        res.stats.rows += m.stats.rows;
        res.stats.step1_misses += m.stats.step1_misses;
        res.stats.step2_evaluated += m.stats.step2_evaluated;
        res.stats.matches += m.stats.matches;
        break;
      }
      case RequestKind::kSearchNearest: {
        NearestMatch& m = nears[i];
        // A nearest search is one full broadcast through the same shared
        // drivers as an exact search: count it into the admission model.
        ++n_search;
        ++n_nearest;
        table_.account_nearest(m);
        if (!m.top.empty()) {
          out.hit = true;
          out.entry = m.top.front().entry;
          out.priority = m.top.front().priority;
          out.distance = m.top.front().distance;
          if (metrics) {
            EngineMetrics::get().near_distance.record_ns(
                static_cast<std::uint64_t>(out.distance));
          }
        }
        out.neighbors = std::move(m.top);
        res.stats.rows += m.stats.rows;
        res.stats.step1_misses += m.stats.step1_misses;
        res.stats.step2_evaluated += m.stats.step2_evaluated;
        res.stats.matches += m.stats.matches;
        break;
      }
      case RequestKind::kUpdate: {
        const auto loc = table_.locate(req.target);
        if (!loc) break;  // unknown entry: result stays a miss
        if (req.incremental) {
          table_.rewrite_digits(req.target, req.entry);
        } else {
          table_.update(req.target, req.entry);
        }
        // A delta rewrite of an unchanged word issues zero pulses and
        // never enters the driver admission model.
        if (table_.last_write_phases() > 0) {
          PendingWrite w;
          w.mat = loc->mat;
          w.subarray = loc->subarray;
          w.phases = table_.last_write_phases();
          pending_writes.push_back(w);
        }
        out.hit = true;
        out.entry = req.target;
        out.priority = table_.priority_of(req.target);
        break;
      }
      case RequestKind::kErase: {
        if (!table_.contains(req.target)) break;
        // Peripheral-only (valid bit), no device pulses — and no HV driver
        // occupancy, so nothing enters the admission model.
        table_.erase(req.target);
        out.hit = true;
        out.entry = req.target;
        break;
      }
      case RequestKind::kInsert: {
        const EntryId id = table_.insert(req.entry, req.priority, req.mat);
        if (id == kInvalidEntry) break;  // table/mat full: result stays a miss
        const auto loc = table_.locate(id);
        PendingWrite w;
        w.mat = loc->mat;
        w.subarray = loc->subarray;
        w.phases = table_.last_write_phases();
        pending_writes.push_back(w);
        out.hit = true;
        out.entry = id;
        out.priority = req.priority;
        break;
      }
      case RequestKind::kSetPriority: {
        if (!table_.contains(req.target)) break;
        // Peripheral-only: the priority lives in the resolver, not in
        // cells — no pulses, no driver occupancy.
        table_.set_priority(req.target, req.priority);
        out.hit = true;
        out.entry = req.target;
        out.priority = req.priority;
        break;
      }
      case RequestKind::kRelocate: {
        if (!table_.contains(req.target)) break;
        if (!table_.relocate(req.target, req.mat)) break;
        const auto loc = table_.locate(req.target);
        PendingWrite w;
        w.mat = loc->mat;
        w.subarray = loc->subarray;
        w.phases = table_.last_write_phases();
        pending_writes.push_back(w);
        out.hit = true;
        out.entry = req.target;
        out.priority = table_.priority_of(req.target);
        break;
      }
    }
  }

  // Driver-multiplex admission: write phases first (write-priority; one
  // phase per mat per cycle, a pending search broadcast stalls on the
  // paired subarray), then the search broadcast runs unobstructed.
  long long stalls_before = 0;
  for (const auto& s : mat_schedulers_) stalls_before += s.stalls();
  const int subarrays = table_.config().subarrays_per_mat;
  std::vector<std::deque<PendingWrite>> mat_queue(
      static_cast<std::size_t>(table_.mats()));
  for (const auto& w : pending_writes) {
    mat_queue[static_cast<std::size_t>(w.mat)].push_back(w);
  }
  std::vector<arch::MatOp> cycle_req(static_cast<std::size_t>(subarrays));
  bool writes_pending = !pending_writes.empty();
  while (writes_pending) {
    writes_pending = false;
    for (int m = 0; m < table_.mats(); ++m) {
      auto& q = mat_queue[static_cast<std::size_t>(m)];
      if (q.empty()) continue;
      PendingWrite& head = q.front();
      std::fill(cycle_req.begin(), cycle_req.end(), arch::MatOp::kIdle);
      cycle_req[static_cast<std::size_t>(head.subarray)] = arch::MatOp::kWrite;
      // The blocked search broadcast keeps requesting the paired
      // subarray's select lines; the shared bank denies it (stall).
      const int paired = head.subarray ^ 1;
      if (n_search > 0) {
        cycle_req[static_cast<std::size_t>(paired)] = arch::MatOp::kSearch;
      }
      const auto granted =
          mat_schedulers_[static_cast<std::size_t>(m)].submit(cycle_req);
      if (granted[static_cast<std::size_t>(head.subarray)]) {
        if (--head.phases == 0) q.pop_front();
      }
      if (!q.empty()) writes_pending = true;
    }
    ++res.write_cycles;
  }
  // Search broadcast: all subarrays of all mats search in lock-step.
  if (n_search > 0) {
    std::fill(cycle_req.begin(), cycle_req.end(), arch::MatOp::kSearch);
    for (std::size_t c = 0; c < n_search; ++c) {
      for (auto& sched : mat_schedulers_) sched.submit(cycle_req);
    }
  }
  long long stalls_after = 0;
  for (const auto& s : mat_schedulers_) stalls_after += s.stalls();
  res.driver_stalls = stalls_after - stalls_before;
  res.model_latency_s =
      static_cast<double>(res.write_cycles) * options_.write_pulse_s +
      static_cast<double>(n_search) *
          table_.energy(0).costs().latency_full;

  // Totals + obs counters.
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  searches_.fetch_add(n_search, std::memory_order_relaxed);
  nearest_.fetch_add(n_nearest, std::memory_order_relaxed);
  writes_.fetch_add(pending_writes.size(), std::memory_order_relaxed);
  driver_stalls_.fetch_add(res.driver_stalls, std::memory_order_relaxed);
  driver_cycles_.fetch_add(
      res.write_cycles + static_cast<long long>(n_search),
      std::memory_order_relaxed);
  model_time_s_.fetch_add(res.model_latency_s, std::memory_order_relaxed);
  if (metrics) {
    auto& em = EngineMetrics::get();
    em.batches.add();
    em.requests.add(batch.size());
    em.searches.add(n_search);
    em.nearest.add(n_nearest);
    em.writes.add(pending_writes.size());
    em.driver_stalls.add(static_cast<std::uint64_t>(res.driver_stalls));
    em.write_cycles.add(static_cast<std::uint64_t>(res.write_cycles));
    // Pruning totals live on the table; mirror the delta since the last
    // batch into the registry (coordinator-only, so the delta is safe).
    const long long considered_now = table_.mats_considered();
    const long long skipped_now = table_.mats_skipped();
    em.mats_considered.add(
        static_cast<std::uint64_t>(considered_now - last_mats_considered_));
    em.mats_skipped.add(
        static_cast<std::uint64_t>(skipped_now - last_mats_skipped_));
    last_mats_considered_ = considered_now;
    last_mats_skipped_ = skipped_now;
    em.queue_hwm.set(static_cast<double>(queue_.high_watermark()));
    const std::uint64_t end_ns = obs::now_ns();
    em.apply.record_ns(end_ns - apply0_ns);
    if (work.submit_ns != 0 && end_ns > work.submit_ns) {
      const std::uint64_t total_ns = end_ns - work.submit_ns;
      em.batch_total.record_ns(total_ns);
      note_slow_query(work, total_ns, n_search);
    }
  }
  res.wall_us = obs::now_us() - t0;
  return res;
}

namespace {

/// FNV-1a over the batch shape + first search query: stable across runs
/// for the same request, cheap enough for the slow-query candidate path.
std::uint64_t batch_fingerprint(const std::vector<Request>& batch) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(batch.size());
  for (const Request& r : batch) mix(static_cast<std::uint64_t>(r.kind));
  for (const Request& r : batch) {
    if (r.kind != RequestKind::kSearch &&
        r.kind != RequestKind::kSearchNearest) {
      continue;
    }
    for (const std::uint8_t bit : r.query) {
      h ^= bit;
      h *= 1099511628211ull;
    }
    break;
  }
  return h;
}

}  // namespace

void SearchEngine::note_slow_query(const Work& work, std::uint64_t total_ns,
                                   std::size_t n_search) {
  const std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_queries_.size() >= kSlowQueryLog &&
      total_ns <= slow_queries_.front().total_ns) {
    return;
  }
  SlowQuery entry;
  entry.seq = work.seq;
  entry.trace_id = work.trace_id;
  entry.total_ns = total_ns;
  entry.requests = static_cast<std::uint32_t>(work.batch.size());
  entry.searches = static_cast<std::uint32_t>(n_search);
  entry.fingerprint = batch_fingerprint(work.batch);
  // Keep ascending by total_ns; evict the fastest entry once full.
  const auto pos = std::lower_bound(
      slow_queries_.begin(), slow_queries_.end(), entry,
      [](const SlowQuery& a, const SlowQuery& b) {
        return a.total_ns < b.total_ns;
      });
  slow_queries_.insert(pos, entry);
  if (slow_queries_.size() > kSlowQueryLog) slow_queries_.erase(
      slow_queries_.begin());
}

std::vector<SlowQuery> SearchEngine::slow_queries() const {
  std::vector<SlowQuery> out;
  {
    const std::lock_guard<std::mutex> lock(slow_mu_);
    out = slow_queries_;
  }
  std::reverse(out.begin(), out.end());  // worst first
  return out;
}

}  // namespace fetcam::engine
