#include "engine/engine.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace fetcam::engine {

namespace {

struct EngineMetrics {
  obs::Counter& batches;
  obs::Counter& requests;
  obs::Counter& searches;
  obs::Counter& writes;
  obs::Counter& driver_stalls;
  obs::Counter& write_cycles;
  obs::Gauge& queue_hwm;

  static EngineMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static EngineMetrics m{
        reg.counter("engine.batches"),     reg.counter("engine.requests"),
        reg.counter("engine.searches"),    reg.counter("engine.writes"),
        reg.counter("engine.driver_stalls"),
        reg.counter("engine.write_cycles"),
        reg.gauge("engine.queue_high_watermark"),
    };
    return m;
  }
};

bool is_pure_search(const std::vector<Request>& batch) {
  for (const Request& r : batch) {
    if (r.kind != RequestKind::kSearch) return false;
  }
  return true;
}

}  // namespace

SearchEngine::SearchEngine(TcamTable& table, EngineOptions options)
    : table_(table), options_(options), queue_(options.queue_capacity) {
  const TableConfig& cfg = table.config();
  mat_groups_ = std::clamp(options.mat_groups, 1, cfg.mats);
  dispatch_threads_ = options.dispatch_threads > 0 ? options.dispatch_threads
                                                   : util::thread_count();
  if (dispatch_threads_ < 1) dispatch_threads_ = 1;
  if (options_.coalesce_batches == 0) options_.coalesce_batches = 1;
  // Contiguous, near-even group split: group g covers
  // [g*mats/G, (g+1)*mats/G) — fixed at construction, so the fold order
  // (and with it every merged result) is a pure function of the config.
  group_bounds_.resize(static_cast<std::size_t>(mat_groups_) + 1);
  for (int g = 0; g <= mat_groups_; ++g) {
    group_bounds_[static_cast<std::size_t>(g)] =
        static_cast<int>(static_cast<long long>(g) * cfg.mats / mat_groups_);
  }
  arch::MatGeometry geom;
  geom.rows = cfg.rows_per_mat / cfg.subarrays_per_mat;
  geom.cols = cfg.cols;
  geom.subarrays = cfg.subarrays_per_mat;
  mat_schedulers_.reserve(static_cast<std::size_t>(cfg.mats));
  for (int m = 0; m < cfg.mats; ++m) {
    mat_schedulers_.emplace_back(geom, arch::HvDriverParams{});
  }
  helpers_.reserve(static_cast<std::size_t>(dispatch_threads_ - 1));
  for (int t = 1; t < dispatch_threads_; ++t) {
    helpers_.emplace_back([this] { helper_loop(); });
  }
  coordinator_ = std::thread([this] { coordinator_loop(); });
}

SearchEngine::~SearchEngine() {
  queue_.close();
  if (coordinator_.joinable()) coordinator_.join();
  {
    const std::lock_guard<std::mutex> lock(round_mu_);
    pool_stop_ = true;
  }
  round_cv_.notify_all();
  for (std::thread& t : helpers_) {
    if (t.joinable()) t.join();
  }
}

std::future<BatchResult> SearchEngine::submit(std::vector<Request> batch) {
  Work work;
  work.batch = std::move(batch);
  std::future<BatchResult> future = work.promise.get_future();
  // Sequence assignment and queue insertion happen under one lock so the
  // FIFO queue order IS the sequence order (the determinism contract).
  const std::lock_guard<std::mutex> lock(submit_mu_);
  work.seq = next_seq_++;
  if (!queue_.push(std::move(work))) {
    // Engine shut down: the promise was moved into the dropped Work, so
    // recreate a broken-promise future explicitly.
    std::promise<BatchResult> broken;
    broken.set_exception(std::make_exception_ptr(
        std::runtime_error("engine is shut down")));
    return broken.get_future();
  }
  return future;
}

BatchResult SearchEngine::execute(std::vector<Request> batch) {
  return submit(std::move(batch)).get();
}

void SearchEngine::drain() {
  // An empty batch flushes: batches apply in order, so once it resolves
  // every earlier batch has been applied.
  execute({});
}

double SearchEngine::mat_utilization(int mat) const {
  return mat_schedulers_[static_cast<std::size_t>(mat)].utilization();
}

void SearchEngine::helper_loop() {
  std::uint64_t seen = 0;
  std::shared_ptr<Round> round;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(round_mu_);
      round_cv_.wait(lock, [&] { return pool_stop_ || round_gen_ != seen; });
      if (pool_stop_) return;
      seen = round_gen_;
      round = round_;
    }
    for (;;) {
      const std::size_t i =
          round->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= round->count) break;
      (*round->fn)(i);
      if (round->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          round->count) {
        const std::lock_guard<std::mutex> lock(round->mu);
        round->cv.notify_all();
      }
    }
    round.reset();
  }
}

void SearchEngine::run_round(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (helpers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto round = std::make_shared<Round>();
  round->fn = &fn;
  round->count = count;
  {
    const std::lock_guard<std::mutex> lock(round_mu_);
    round_ = round;
    ++round_gen_;
  }
  round_cv_.notify_all();
  // The coordinator is dispatcher #0: it claims tasks alongside the
  // helpers instead of idling on the wait.
  for (;;) {
    const std::size_t i = round->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= round->count) break;
    (*round->fn)(i);
    if (round->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        round->count) {
      const std::lock_guard<std::mutex> lock(round->mu);
      round->cv.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(round->mu);
  round->cv.wait(lock, [&] {
    return round->done.load(std::memory_order_acquire) == round->count;
  });
}

void SearchEngine::coordinator_loop() {
  for (;;) {
    std::vector<Work> window = queue_.pop_some(options_.coalesce_batches);
    if (window.empty()) return;  // closed and drained
    std::size_t begin = 0;
    while (begin < window.size()) {
      // Coalescing rule: extend the sub-window through pure-search
      // batches; the first batch carrying a mutation closes it.  All
      // matches in the sub-window therefore see the same table state a
      // batch-at-a-time coordinator would have shown them.
      std::size_t end = begin;
      while (end < window.size()) {
        const bool pure = is_pure_search(window[end].batch);
        ++end;
        if (!pure) break;
      }
      const double t0 = obs::now_us();
      std::vector<std::vector<TableMatch>> matches;
      match_window(window, begin, end, matches);
      // Count the window before resolving its promises, so a caller that
      // blocks on execute() observes the window as processed.
      windows_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t w = begin; w < end; ++w) {
        BatchResult res =
            apply(window[w].seq, window[w].batch, matches[w - begin], t0);
        window[w].promise.set_value(std::move(res));
      }
      begin = end;
    }
  }
}

void SearchEngine::match_window(
    std::vector<Work>& works, std::size_t begin, std::size_t end,
    std::vector<std::vector<TableMatch>>& matches) {
  matches.resize(end - begin);
  struct SearchRef {
    std::size_t w = 0;  ///< index into works
    std::size_t i = 0;  ///< request index within its batch
  };
  std::vector<SearchRef> searches;
  for (std::size_t w = begin; w < end; ++w) {
    matches[w - begin].resize(works[w].batch.size());
    for (std::size_t i = 0; i < works[w].batch.size(); ++i) {
      if (works[w].batch[i].kind == RequestKind::kSearch) {
        searches.push_back({w, i});
      }
    }
  }
  if (searches.empty()) return;

  // Phase A fan-out: task k = (search k/G, group k%G).  Every partial
  // writes its own pre-indexed slot, so the claim schedule is invisible.
  const std::size_t groups = static_cast<std::size_t>(mat_groups_);
  std::vector<TableMatch> partials(searches.size() * groups);
  const std::function<void(std::size_t)> task = [&](std::size_t k) {
    thread_local MatchScratch scratch;
    const SearchRef& ref = searches[k / groups];
    const std::size_t g = k % groups;
    table_.match_mats(works[ref.w].batch[ref.i].query, group_bounds_[g],
                      group_bounds_[g + 1], scratch, partials[k]);
  };
  run_round(partials.size(), task);

  // Fixed group-order fold: merge_match resolves by (priority, id), so
  // the merged winner equals the single-dispatcher broadcast bit for bit.
  for (std::size_t s = 0; s < searches.size(); ++s) {
    TableMatch& out = matches[searches[s].w - begin][searches[s].i];
    out = std::move(partials[s * groups]);
    for (std::size_t g = 1; g < groups; ++g) {
      merge_match(out, partials[s * groups + g]);
    }
  }
}

BatchResult SearchEngine::apply(std::uint64_t seq, std::vector<Request>& batch,
                                std::vector<TableMatch>& matches, double t0) {
  BatchResult res;
  res.seq = seq;
  res.results.resize(batch.size());
  std::size_t n_search = 0;

  // Phase B — serial application in request order: accounting, writes,
  // erases.  This ordering (not the dispatcher schedule) defines the
  // energy / endurance / stats totals.
  struct PendingWrite {
    int mat = 0;
    int subarray = 0;
    int phases = 0;
  };
  std::vector<PendingWrite> pending_writes;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& req = batch[i];
    RequestResult& out = res.results[i];
    switch (req.kind) {
      case RequestKind::kSearch: {
        const TableMatch& m = matches[i];
        ++n_search;
        table_.account_search(m);
        out.hit = m.hit;
        out.entry = m.entry;
        out.priority = m.priority;
        res.stats.rows += m.stats.rows;
        res.stats.step1_misses += m.stats.step1_misses;
        res.stats.step2_evaluated += m.stats.step2_evaluated;
        res.stats.matches += m.stats.matches;
        break;
      }
      case RequestKind::kUpdate: {
        const auto loc = table_.locate(req.target);
        if (!loc) break;  // unknown entry: result stays a miss
        if (req.incremental) {
          table_.rewrite_digits(req.target, req.entry);
        } else {
          table_.update(req.target, req.entry);
        }
        // A delta rewrite of an unchanged word issues zero pulses and
        // never enters the driver admission model.
        if (table_.last_write_phases() > 0) {
          PendingWrite w;
          w.mat = loc->mat;
          w.subarray = loc->subarray;
          w.phases = table_.last_write_phases();
          pending_writes.push_back(w);
        }
        out.hit = true;
        out.entry = req.target;
        out.priority = table_.priority_of(req.target);
        break;
      }
      case RequestKind::kErase: {
        if (!table_.contains(req.target)) break;
        // Peripheral-only (valid bit), no device pulses — and no HV driver
        // occupancy, so nothing enters the admission model.
        table_.erase(req.target);
        out.hit = true;
        out.entry = req.target;
        break;
      }
      case RequestKind::kInsert: {
        const EntryId id = table_.insert(req.entry, req.priority, req.mat);
        if (id == kInvalidEntry) break;  // table/mat full: result stays a miss
        const auto loc = table_.locate(id);
        PendingWrite w;
        w.mat = loc->mat;
        w.subarray = loc->subarray;
        w.phases = table_.last_write_phases();
        pending_writes.push_back(w);
        out.hit = true;
        out.entry = id;
        out.priority = req.priority;
        break;
      }
      case RequestKind::kSetPriority: {
        if (!table_.contains(req.target)) break;
        // Peripheral-only: the priority lives in the resolver, not in
        // cells — no pulses, no driver occupancy.
        table_.set_priority(req.target, req.priority);
        out.hit = true;
        out.entry = req.target;
        out.priority = req.priority;
        break;
      }
      case RequestKind::kRelocate: {
        if (!table_.contains(req.target)) break;
        if (!table_.relocate(req.target, req.mat)) break;
        const auto loc = table_.locate(req.target);
        PendingWrite w;
        w.mat = loc->mat;
        w.subarray = loc->subarray;
        w.phases = table_.last_write_phases();
        pending_writes.push_back(w);
        out.hit = true;
        out.entry = req.target;
        out.priority = table_.priority_of(req.target);
        break;
      }
    }
  }

  // Driver-multiplex admission: write phases first (write-priority; one
  // phase per mat per cycle, a pending search broadcast stalls on the
  // paired subarray), then the search broadcast runs unobstructed.
  long long stalls_before = 0;
  for (const auto& s : mat_schedulers_) stalls_before += s.stalls();
  const int subarrays = table_.config().subarrays_per_mat;
  std::vector<std::deque<PendingWrite>> mat_queue(
      static_cast<std::size_t>(table_.mats()));
  for (const auto& w : pending_writes) {
    mat_queue[static_cast<std::size_t>(w.mat)].push_back(w);
  }
  std::vector<arch::MatOp> cycle_req(static_cast<std::size_t>(subarrays));
  bool writes_pending = !pending_writes.empty();
  while (writes_pending) {
    writes_pending = false;
    for (int m = 0; m < table_.mats(); ++m) {
      auto& q = mat_queue[static_cast<std::size_t>(m)];
      if (q.empty()) continue;
      PendingWrite& head = q.front();
      std::fill(cycle_req.begin(), cycle_req.end(), arch::MatOp::kIdle);
      cycle_req[static_cast<std::size_t>(head.subarray)] = arch::MatOp::kWrite;
      // The blocked search broadcast keeps requesting the paired
      // subarray's select lines; the shared bank denies it (stall).
      const int paired = head.subarray ^ 1;
      if (n_search > 0) {
        cycle_req[static_cast<std::size_t>(paired)] = arch::MatOp::kSearch;
      }
      const auto granted =
          mat_schedulers_[static_cast<std::size_t>(m)].submit(cycle_req);
      if (granted[static_cast<std::size_t>(head.subarray)]) {
        if (--head.phases == 0) q.pop_front();
      }
      if (!q.empty()) writes_pending = true;
    }
    ++res.write_cycles;
  }
  // Search broadcast: all subarrays of all mats search in lock-step.
  if (n_search > 0) {
    std::fill(cycle_req.begin(), cycle_req.end(), arch::MatOp::kSearch);
    for (std::size_t c = 0; c < n_search; ++c) {
      for (auto& sched : mat_schedulers_) sched.submit(cycle_req);
    }
  }
  long long stalls_after = 0;
  for (const auto& s : mat_schedulers_) stalls_after += s.stalls();
  res.driver_stalls = stalls_after - stalls_before;
  res.model_latency_s =
      static_cast<double>(res.write_cycles) * options_.write_pulse_s +
      static_cast<double>(n_search) *
          table_.energy(0).costs().latency_full;

  // Totals + obs counters.
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  searches_.fetch_add(n_search, std::memory_order_relaxed);
  writes_.fetch_add(pending_writes.size(), std::memory_order_relaxed);
  driver_stalls_.fetch_add(res.driver_stalls, std::memory_order_relaxed);
  driver_cycles_.fetch_add(
      res.write_cycles + static_cast<long long>(n_search),
      std::memory_order_relaxed);
  model_time_s_.fetch_add(res.model_latency_s, std::memory_order_relaxed);
  if (obs::metrics_on()) {
    auto& em = EngineMetrics::get();
    em.batches.add();
    em.requests.add(batch.size());
    em.searches.add(n_search);
    em.writes.add(pending_writes.size());
    em.driver_stalls.add(static_cast<std::uint64_t>(res.driver_stalls));
    em.write_cycles.add(static_cast<std::uint64_t>(res.write_cycles));
    em.queue_hwm.set(static_cast<double>(queue_.high_watermark()));
  }
  res.wall_us = obs::now_us() - t0;
  return res;
}

}  // namespace fetcam::engine
