// Bounded MPMC blocking queue for engine batches.
//
// Multiple producers may push concurrently; multiple consumers may pop.
// push blocks while the queue is at capacity (bounded admission — the
// backpressure a serving layer needs so a fast producer cannot queue
// unbounded work), pop blocks while empty.  close() wakes everyone: pushes
// after close fail, pops drain the remaining items and then return empty.
//
// A mutex + two condition variables is deliberately boring: batches are
// coarse (hundreds of requests), so queue overhead is noise, and the
// determinism contract lives in the engine's in-order batch application,
// not here.
//
// Bulk pops (pop_some / try_pop_some) exist for batch coalescing: the
// engine coordinator drains several pending batches in one lock
// acquisition and matches them in one fan-out round.  A bulk pop frees
// MULTIPLE capacity slots at once, so it must notify_all on not_full_:
// waking a single producer (pop()'s discipline, correct for one slot)
// would strand every other producer blocked on the full queue — if the
// consumer then waits for their items before popping again (exactly what
// a drain-on-shutdown does), nobody ever wakes and both sides deadlock.
// tests/engine/queue_test.cpp pins this as a regression test.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace fetcam::engine {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while full.  Returns false (drops the item) once closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Empty optional once closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Blocks while empty, then drains up to `max` items in one lock
  /// acquisition (batch coalescing).  Empty vector once closed AND
  /// drained.  Frees up to `max` slots, so every blocked producer is
  /// woken (see the header comment).
  std::vector<T> pop_some(std::size_t max) {
    std::vector<T> out;
    if (max == 0) return out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      take_locked(max, out);
    }
    if (!out.empty()) not_full_.notify_all();
    return out;
  }

  /// Non-blocking bulk pop: whatever is immediately available, up to
  /// `max` items (possibly none).
  std::vector<T> try_pop_some(std::size_t max) {
    std::vector<T> out;
    if (max == 0) return out;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      take_locked(max, out);
    }
    if (!out.empty()) not_full_.notify_all();
    return out;
  }

  /// Wake all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Deepest the queue ever got (admission-pressure telemetry).
  std::size_t high_watermark() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return high_watermark_;
  }

 private:
  void take_locked(std::size_t max, std::vector<T>& out) {
    const std::size_t n = items_.size() < max ? items_.size() : max;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_watermark_ = 0;
  bool closed_ = false;
};

}  // namespace fetcam::engine
