// Bounded MPMC blocking queue for engine batches.
//
// Multiple producers may push concurrently; multiple consumers may pop.
// push blocks while the queue is at capacity (bounded admission — the
// backpressure a serving layer needs so a fast producer cannot queue
// unbounded work), pop blocks while empty.  close() wakes everyone: pushes
// after close fail, pops drain the remaining items and then return empty.
//
// A mutex + two condition variables is deliberately boring: batches are
// coarse (hundreds of requests), so queue overhead is noise, and the
// determinism contract lives in the engine's in-order batch application,
// not here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace fetcam::engine {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while full.  Returns false (drops the item) once closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Empty optional once closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wake all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Deepest the queue ever got (admission-pressure telemetry).
  std::size_t high_watermark() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return high_watermark_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_watermark_ = 0;
  bool closed_ = false;
};

}  // namespace fetcam::engine
