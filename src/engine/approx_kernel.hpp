// Packed approximate-match (threshold Hamming) kernels over the
// PackedShard planar layout — the engine tier of the multi-bit CAM
// (arch/approx_search.hpp is the behavioral reference).
//
// Digit encoding: a d-bit digit (d = digit_bits in {1, 2, 3}) is d
// consecutive bit columns of the existing ternary storage, so the planar
// (care, value) planes and the per-word mismatch test
//
//   mis = care & (value ^ query)
//
// are unchanged.  A digit mismatches when ANY cared column in its d-column
// group mismatches; a row's distance is the number of mismatching digits.
// The per-word digit collapse folds a mismatch word onto the digit-start
// bit positions:
//
//   d = 1:  every bit is a digit start                      (collapse = mis)
//   d = 2:  64 % 2 == 0, groups never straddle words:
//           (mis | mis >> 1) & 0x5555...
//   d = 3:  64 % 3 != 0, so groups straddle word boundaries; the next
//           word's low bits are shifted in and the start mask cycles with
//           the word's phase (64w mod 3):
//           (mis | (mis >> 1 | next << 63) | (mis >> 2 | next << 62))
//             & kThirdMask[(3 - w % 3) % 3]
//
// popcount of the collapsed word counts each digit exactly once, at the
// word its group starts in.  At d = 1 and threshold = 0 the within mask
// equals the exact full-match mask bit-for-bit (kernel_differential tier
// anchor).
//
// Early exit: a row (scalar) or a 4-row vector group (AVX2) stops
// accumulating once every row in it is already past the threshold.  This
// changes cost only — rows within the threshold always accumulate their
// full distance, so the reported (within, distance) pairs are bit-exact
// across tiers.  Rows past the threshold report kDistanceOverflow.
//
// Statistics are single-step (full-match convention): every row fires
// once, step1_misses = 0, step2_evaluated = rows, matches = rows within
// the threshold.  There is no two-step saving to model — the threshold
// search reads all digits — which is exactly what the exact-vs-approx
// energy A/B in bench_engine_throughput measures.
#pragma once

#include "engine/packed_kernel.hpp"

namespace fetcam::engine {

/// Distance reported for rows past the threshold (their true distance is
/// not computed — the kernels early-exit).
inline constexpr std::uint16_t kDistanceOverflow = 0xFFFF;

namespace detail {

/// Fold mismatch word `mis` (word index w of a row) onto its digit-start
/// bits; `next` is the row's following mismatch word (0 for the last).
/// Exposed for the differential tests.
std::uint64_t collapse_digits(std::uint64_t mis, std::uint64_t next, int w,
                              int digit_bits);

// Per-tier kernels.  within_mask: rows_pad/64 words, fully overwritten
// (bit r set = valid row r within threshold).  distances: rows_pad
// entries; entries for rows within the threshold hold the digit distance,
// all other entries (past-threshold, invalid-but-close, padded) hold
// kDistanceOverflow.
arch::SearchStats approx_match_scalar(const ShardView& s,
                                      const std::uint64_t* query,
                                      int digit_bits, int threshold,
                                      std::uint64_t* within_mask,
                                      std::uint16_t* distances);
// Defined in approx_kernel_avx2.cpp (FETCAM_HAVE_AVX2 builds only).
arch::SearchStats approx_match_avx2(const ShardView& s,
                                    const std::uint64_t* query,
                                    int digit_bits, int threshold,
                                    std::uint64_t* within_mask,
                                    std::uint16_t* distances);

// Query-blocked variants (nq in 1..kMaxQueryBlock), bit-exact per query
// vs the single-query kernels.  Approximate traffic is a small fraction
// of exact traffic, so these delegate per query rather than sharing the
// planar pass; the signature matches the exact blocked kernels so the
// shared-pass optimization can land without touching callers.
void approx_match_block_scalar(const ShardView& s,
                               const std::uint64_t* const* queries, int nq,
                               int digit_bits, int threshold,
                               std::uint64_t* const* within_masks,
                               std::uint16_t* const* distances,
                               arch::SearchStats* stats);
void approx_match_block_avx2(const ShardView& s,
                             const std::uint64_t* const* queries, int nq,
                             int digit_bits, int threshold,
                             std::uint64_t* const* within_masks,
                             std::uint16_t* const* distances,
                             arch::SearchStats* stats);

}  // namespace detail

/// Threshold match against one shard: rows whose digit distance is <=
/// threshold get their within bit set and their distance recorded.
/// within_mask is resized to shard.mask_words(), distances to the padded
/// row count.  Requires query.cols == shard.cols(), cols % digit_bits ==
/// 0, digit_bits in [1, 3], threshold >= 0.  The tier-less overload uses
/// active_kernel_tier().
arch::SearchStats approx_match(const PackedShard& shard,
                               const PackedQuery& query, int digit_bits,
                               int threshold,
                               std::vector<std::uint64_t>& within_mask,
                               std::vector<std::uint16_t>& distances);
arch::SearchStats approx_match(const PackedShard& shard,
                               const PackedQuery& query, int digit_bits,
                               int threshold,
                               std::vector<std::uint64_t>& within_mask,
                               std::vector<std::uint16_t>& distances,
                               KernelTier tier);

}  // namespace fetcam::engine
