// Binary-protocol search front-end over SearchEngine (wire.hpp framing).
//
// Threading model — two service threads per server:
//
//   * IO thread: one epoll loop owns the listening socket and every
//     connection fd.  It accepts, reads, frames, validates, and submits
//     each kSearchBatch as ONE engine batch (so a frame inherits the
//     engine's determinism contract verbatim).  Writes are flushed from
//     the same loop via EPOLLOUT.
//   * Completion thread: engine futures are not pollable, so a dedicated
//     thread waits on them in FIFO submission order (the engine resolves
//     in that order — no reordering, no starvation), serializes the
//     response frame into the connection's tx buffer, and wakes the IO
//     thread through an eventfd.
//
// Fault containment: a malformed frame (bad magic / version / type,
// oversized length, truncated or inconsistent payload) earns that
// connection an error frame and a close-after-flush.  Nothing else is
// touched — other connections keep streaming, the engine never sees the
// bad frame.  Pipelining is bounded by max_pipeline in-flight frames per
// connection; past that the server stops reading the socket (EPOLLIN off)
// until responses drain — TCP backpressure, not unbounded buffering.
//
// stop() is a clean drain: accept stops, already-submitted frames finish,
// their responses flush, then connections close.  The flush is bounded by
// ServerOptions::drain_timeout_ms — a peer that stops reading (full TCP
// buffer) would otherwise pin its tx buffer forever and hang stop(); past
// the deadline such connections are force-closed, undelivered bytes and
// all.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include <memory>

#include "engine/engine.hpp"

namespace fetcam::engine {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (query the bound one via port())
  /// In-flight request frames per connection before the server stops
  /// reading that socket (pipelining bound / backpressure).
  std::size_t max_pipeline = 64;
  int listen_backlog = 64;
  /// stop() drain bound: connections that still owe bytes this long after
  /// the drain began (peer stopped reading) are force-closed rather than
  /// blocking stop() forever.
  int drain_timeout_ms = 2000;
  /// SO_SNDBUF for accepted connections; 0 = kernel default (autotuned).
  /// Setting a value disables kernel autotuning — the drain tests use a
  /// tiny buffer to deterministically strand bytes at a dead peer.
  int sndbuf_bytes = 0;
};

class SearchServer {
 public:
  /// Serves searches against `engine`'s table.  `cols` is the query width
  /// the table expects; frames with a different words_per_query are
  /// rejected with kBadWidth.
  SearchServer(SearchEngine& engine, int cols, ServerOptions options = {});
  ~SearchServer();  ///< stop() if still running

  SearchServer(const SearchServer&) = delete;
  SearchServer& operator=(const SearchServer&) = delete;

  /// Bind + listen + spawn the service threads.  Throws std::system_error
  /// on socket failures.
  void start();
  /// Clean drain: stop accepting, finish in-flight frames, flush, close.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(); }
  /// Bound port (after start(); resolves ephemeral binds).
  std::uint16_t port() const { return port_.load(); }

  // Telemetry.
  std::uint64_t connections_accepted() const { return accepted_.load(); }
  std::uint64_t connections_open() const { return open_conns_.load(); }
  std::uint64_t frames_served() const { return frames_served_.load(); }
  std::uint64_t frames_rejected() const { return frames_rejected_.load(); }
  /// kStats scrapes answered (counted separately from search frames so
  /// frames_served keeps meaning "search results delivered").
  std::uint64_t stats_served() const { return stats_served_.load(); }
  /// Times a connection hit max_pipeline and had its reads paused.
  std::uint64_t backpressure_stalls() const {
    return backpressure_stalls_.load();
  }
  /// Connections force-closed at the stop() drain deadline.
  std::uint64_t force_closes() const { return force_closes_.load(); }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  SearchEngine& engine_;
  int cols_;
  ServerOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_conns_{0};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::uint64_t> stats_served_{0};
  std::atomic<std::uint64_t> backpressure_stalls_{0};
  std::atomic<std::uint64_t> force_closes_{0};
};

}  // namespace fetcam::engine
