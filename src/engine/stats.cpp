#include "engine/stats.hpp"

#include <cstdio>
#include <string_view>

#include "engine/engine.hpp"
#include "engine/packed_kernel.hpp"
#include "obs/json_util.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"

namespace fetcam::engine {

namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

void append_latency(std::string& out, std::string_view name,
                    const obs::LatencySnapshot& s, bool first) {
  using obs::detail::json_escape;
  using obs::detail::json_number;
  out += first ? "\n" : ",\n";
  out += "    \"" + json_escape(name) + "\": {\"count\": " + u64(s.count) +
         ", \"p50_us\": " + json_number(s.p50_us()) +
         ", \"p95_us\": " + json_number(s.p95_us()) +
         ", \"p99_us\": " + json_number(s.p99_us()) +
         ", \"p999_us\": " + json_number(s.p999_us()) +
         ", \"max_us\": " + json_number(s.max_us()) +
         ", \"mean_us\": " + json_number(s.mean_us()) + "}";
}

}  // namespace

std::string stats_snapshot_json(const SearchEngine& engine,
                                const ServerStatsView* server,
                                const ConnectionStatsView* conn) {
  using obs::detail::json_number;
  std::string out = "{\n  \"schema\": \"fetcam.stats.v1\",\n";
  out += "  \"kernel_tier\": \"";
  out += kernel_tier_name(active_kernel_tier());
  out += "\",\n";

  out += "  \"engine\": {";
  out += "\"batches\": " + u64(engine.batches());
  out += ", \"requests\": " + u64(engine.requests());
  out += ", \"searches\": " + u64(engine.searches());
  out += ", \"writes\": " + u64(engine.writes());
  out += ", \"windows\": " + u64(engine.windows());
  out += ", \"driver_stalls\": " + std::to_string(engine.driver_stalls());
  out += ", \"driver_cycles\": " + std::to_string(engine.driver_cycles());
  out += ", \"model_time_s\": " + json_number(engine.model_time_s());
  out += ", \"queue_depth\": " + u64(engine.queue_depth());
  out += ", \"queue_capacity\": " + u64(engine.queue_capacity());
  out += ", \"queue_high_watermark\": " + u64(engine.queue_high_watermark());
  out += ", \"in_flight\": " + u64(engine.in_flight());
  out += ", \"mat_groups\": " + std::to_string(engine.mat_groups());
  out +=
      ", \"dispatch_threads\": " + std::to_string(engine.dispatch_threads());
  out += ", \"query_block\": " + std::to_string(engine.query_block());
  const long long considered = engine.mats_considered();
  const long long skipped = engine.mats_skipped();
  out += ", \"mats_considered\": " + std::to_string(considered);
  out += ", \"mats_skipped\": " + std::to_string(skipped);
  out += ", \"mat_skip_rate\": " +
         json_number(considered > 0 ? static_cast<double>(skipped) /
                                          static_cast<double>(considered)
                                    : 0.0);
  out += "},\n";

  out += "  \"stages\": {";
  bool first = true;
  for (const auto& [name, snap] :
       obs::MetricsRegistry::instance().latency_snapshots()) {
    append_latency(out, name, snap, first);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"slow_queries\": [";
  first = true;
  for (const SlowQuery& q : engine.slow_queries()) {
    out += first ? "\n" : ",\n";
    first = false;
    char fp[32];
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(q.fingerprint));
    out += "    {\"seq\": " + u64(q.seq) +
           ", \"trace_id\": " + u64(q.trace_id) + ", \"total_us\": " +
           json_number(static_cast<double>(q.total_ns) / 1e3) +
           ", \"requests\": " + std::to_string(q.requests) +
           ", \"searches\": " + std::to_string(q.searches) +
           ", \"fingerprint\": \"" + fp + "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";

  if (server != nullptr) {
    out += "  \"server\": {";
    out += "\"connections_accepted\": " + u64(server->connections_accepted);
    out += ", \"connections_open\": " + u64(server->connections_open);
    out += ", \"frames_served\": " + u64(server->frames_served);
    out += ", \"frames_rejected\": " + u64(server->frames_rejected);
    out += ", \"stats_served\": " + u64(server->stats_served);
    out += ", \"backpressure_stalls\": " + u64(server->backpressure_stalls);
    out += ", \"force_closes\": " + u64(server->force_closes);
    out += "},\n";
  } else {
    out += "  \"server\": null,\n";
  }

  if (conn != nullptr) {
    out += "  \"connection\": {";
    out += "\"id\": " + u64(conn->id);
    out += ", \"frames\": " + u64(conn->frames);
    out += ", \"rejected\": " + u64(conn->rejected);
    out += ", \"backpressure_stalls\": " + u64(conn->backpressure_stalls);
    out += ", \"in_flight\": " + u64(conn->in_flight);
    out += "}\n";
  } else {
    out += "  \"connection\": null\n";
  }

  out += "}\n";
  return out;
}

}  // namespace fetcam::engine
