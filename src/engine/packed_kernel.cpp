#include "engine/packed_kernel.hpp"

#include <stdexcept>
#include <string>

namespace fetcam::engine {

namespace {

// Digit parity masks: digit c sits at bit (c & 63), and 64 is even, so
// even global digits are even bit positions in every word.
constexpr std::uint64_t kEvenDigits = 0x5555555555555555ULL;
constexpr std::uint64_t kOddDigits = 0xAAAAAAAAAAAAAAAAULL;

}  // namespace

PackedQuery PackedQuery::pack(const arch::BitWord& query) {
  PackedQuery q;
  q.cols = static_cast<int>(query.size());
  q.bits.assign((query.size() + 63) / 64, 0);
  for (std::size_t c = 0; c < query.size(); ++c) {
    if (query[c] != 0) q.bits[c >> 6] |= 1ULL << (c & 63);
  }
  return q;
}

PackedShard::PackedShard(int rows, int cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64) {
  if (rows < 0 || cols <= 0) {
    throw std::invalid_argument("shard needs rows >= 0 and cols > 0");
  }
  const std::size_t words =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(words_per_row_);
  care_.assign(words, 0);   // all-'X': nothing participates in matching
  value_.assign(words, 0);
  valid_.assign(mask_words(), 0);
}

void PackedShard::check_row(int row) const {
  if (row < 0 || row >= rows_) throw std::out_of_range("row out of range");
}

void PackedShard::check_query(const PackedQuery& query) const {
  if (query.cols != cols_) {
    throw std::invalid_argument("query width mismatch");
  }
}

void PackedShard::write(int row, const arch::TernaryWord& entry) {
  check_row(row);
  if (static_cast<int>(entry.size()) != cols_) {
    throw std::invalid_argument("entry width mismatch");
  }
  const std::size_t base =
      static_cast<std::size_t>(row) * static_cast<std::size_t>(words_per_row_);
  for (int w = 0; w < words_per_row_; ++w) {
    care_[base + static_cast<std::size_t>(w)] = 0;
    value_[base + static_cast<std::size_t>(w)] = 0;
  }
  for (int c = 0; c < cols_; ++c) {
    const arch::Ternary t = entry[static_cast<std::size_t>(c)];
    if (t == arch::Ternary::kX) continue;
    const std::size_t word = base + static_cast<std::size_t>(c >> 6);
    const std::uint64_t bit = 1ULL << (c & 63);
    care_[word] |= bit;
    if (t == arch::Ternary::kOne) value_[word] |= bit;
  }
  valid_[static_cast<std::size_t>(row) >> 6] |= 1ULL << (row & 63);
}

void PackedShard::erase(int row) {
  check_row(row);
  valid_[static_cast<std::size_t>(row) >> 6] &= ~(1ULL << (row & 63));
}

bool PackedShard::valid(int row) const {
  check_row(row);
  return (valid_[static_cast<std::size_t>(row) >> 6] >> (row & 63)) & 1ULL;
}

arch::TernaryWord PackedShard::entry(int row) const {
  check_row(row);
  const std::size_t base =
      static_cast<std::size_t>(row) * static_cast<std::size_t>(words_per_row_);
  arch::TernaryWord out(static_cast<std::size_t>(cols_), arch::Ternary::kX);
  for (int c = 0; c < cols_; ++c) {
    const std::size_t word = base + static_cast<std::size_t>(c >> 6);
    const std::uint64_t bit = 1ULL << (c & 63);
    if ((care_[word] & bit) == 0) continue;
    out[static_cast<std::size_t>(c)] = (value_[word] & bit) != 0
                                           ? arch::Ternary::kOne
                                           : arch::Ternary::kZero;
  }
  return out;
}

arch::SearchStats PackedShard::full_match(
    const PackedQuery& query, std::vector<std::uint64_t>& match_mask) const {
  check_query(query);
  arch::SearchStats stats;
  stats.rows = rows_;
  stats.step2_evaluated = rows_;  // single-step: every row evaluates fully
  match_mask.assign(mask_words(), 0);
  const std::size_t wpr = static_cast<std::size_t>(words_per_row_);
  for (int r = 0; r < rows_; ++r) {
    if (((valid_[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL) == 0) {
      continue;
    }
    const std::size_t base = static_cast<std::size_t>(r) * wpr;
    bool matched = true;
    for (std::size_t w = 0; w < wpr; ++w) {
      if ((care_[base + w] & (value_[base + w] ^ query.bits[w])) != 0) {
        matched = false;
        break;
      }
    }
    if (matched) {
      match_mask[static_cast<std::size_t>(r) >> 6] |= 1ULL << (r & 63);
      ++stats.matches;
    }
  }
  return stats;
}

arch::SearchStats PackedShard::two_step_match(
    const PackedQuery& query, std::vector<std::uint64_t>& match_mask) const {
  check_query(query);
  if (cols_ % 2 != 0) {
    throw std::invalid_argument(
        "two-step search needs an even word length (shard is " +
        std::to_string(rows_) + " rows x " + std::to_string(cols_) + " cols)");
  }
  arch::SearchStats stats;
  stats.rows = rows_;
  match_mask.assign(mask_words(), 0);
  const std::size_t wpr = static_cast<std::size_t>(words_per_row_);
  for (int r = 0; r < rows_; ++r) {
    if (((valid_[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL) == 0) {
      // Invalid rows stay erased-to-'0' at cell1 positions and miss in
      // step 1 (same accounting as arch::two_step_search).
      ++stats.step1_misses;
      continue;
    }
    const std::size_t base = static_cast<std::size_t>(r) * wpr;
    // Step 1: even (cell1) digits of every word.
    bool alive = true;
    for (std::size_t w = 0; w < wpr; ++w) {
      if ((care_[base + w] & (value_[base + w] ^ query.bits[w]) &
           kEvenDigits) != 0) {
        alive = false;
        break;
      }
    }
    if (!alive) {
      ++stats.step1_misses;
      continue;
    }
    // Step 2: odd (cell2) digits, only for surviving rows.
    ++stats.step2_evaluated;
    bool matched = true;
    for (std::size_t w = 0; w < wpr; ++w) {
      if ((care_[base + w] & (value_[base + w] ^ query.bits[w]) &
           kOddDigits) != 0) {
        matched = false;
        break;
      }
    }
    if (matched) {
      match_mask[static_cast<std::size_t>(r) >> 6] |= 1ULL << (r & 63);
      ++stats.matches;
    }
  }
  return stats;
}

std::vector<bool> PackedShard::search(const arch::BitWord& query) const {
  std::vector<std::uint64_t> mask;
  full_match(PackedQuery::pack(query), mask);
  std::vector<bool> out(static_cast<std::size_t>(rows_), false);
  for (int r = 0; r < rows_; ++r) {
    out[static_cast<std::size_t>(r)] =
        (mask[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL;
  }
  return out;
}

arch::ScheduledSearchResult PackedShard::two_step_search(
    const arch::BitWord& query) const {
  std::vector<std::uint64_t> mask;
  arch::ScheduledSearchResult res;
  res.stats = two_step_match(PackedQuery::pack(query), mask);
  res.matches.assign(static_cast<std::size_t>(rows_), false);
  for (int r = 0; r < rows_; ++r) {
    res.matches[static_cast<std::size_t>(r)] =
        (mask[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL;
  }
  return res;
}

}  // namespace fetcam::engine
