#include "engine/packed_kernel.hpp"

#include <atomic>
#include <stdexcept>
#include <string>

namespace fetcam::engine {

namespace {

// Digit parity masks: digit c sits at bit (c & 63), and 64 is even, so
// even global digits are even bit positions in every word.
constexpr std::uint64_t kEvenDigits = 0x5555555555555555ULL;
constexpr std::uint64_t kOddDigits = 0xAAAAAAAAAAAAAAAAULL;

bool cpu_has_avx2() {
#if defined(FETCAM_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// -1 = no override; otherwise the KernelTier value.  Relaxed is enough:
// the override is a test/bench knob set between runs, not a hot-path
// synchronization point.
std::atomic<int> g_tier_override{-1};

}  // namespace

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar: return "scalar";
    case KernelTier::kAvx2: return "avx2";
  }
  return "?";
}

bool kernel_tier_available(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar: return true;
    case KernelTier::kAvx2: return cpu_has_avx2();
  }
  return false;
}

KernelTier best_kernel_tier() {
  return cpu_has_avx2() ? KernelTier::kAvx2 : KernelTier::kScalar;
}

KernelTier active_kernel_tier() {
  const int o = g_tier_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<KernelTier>(o);
  return best_kernel_tier();
}

void set_kernel_tier_override(KernelTier tier) {
  if (!kernel_tier_available(tier)) {
    throw std::invalid_argument(std::string("kernel tier ") +
                                kernel_tier_name(tier) +
                                " is not available on this build/CPU");
  }
  g_tier_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void clear_kernel_tier_override() {
  g_tier_override.store(-1, std::memory_order_relaxed);
}

namespace detail {

arch::SearchStats full_match_scalar(const ShardView& s,
                                    const std::uint64_t* query,
                                    std::uint64_t* match_mask) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  stats.step2_evaluated = s.rows;  // single-step: every row evaluates fully
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  for (int r = 0; r < s.rows; ++r) {
    if (((s.valid[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL) ==
        0) {
      continue;
    }
    bool matched = true;
    for (int w = 0; w < s.wpr; ++w) {
      const std::size_t at =
          static_cast<std::size_t>(w) * pad + static_cast<std::size_t>(r);
      if ((s.care[at] & (s.value[at] ^ query[w])) != 0) {
        matched = false;
        break;
      }
    }
    if (matched) {
      match_mask[static_cast<std::size_t>(r) >> 6] |= 1ULL << (r & 63);
      ++stats.matches;
    }
  }
  return stats;
}

arch::SearchStats two_step_match_scalar(const ShardView& s,
                                        const std::uint64_t* query,
                                        std::uint64_t* match_mask) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  for (int r = 0; r < s.rows; ++r) {
    if (((s.valid[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL) ==
        0) {
      // Invalid rows stay erased-to-'0' at cell1 positions and miss in
      // step 1 (same accounting as arch::two_step_search).
      ++stats.step1_misses;
      continue;
    }
    // Step 1: even (cell1) digits of every word.
    bool alive = true;
    for (int w = 0; w < s.wpr; ++w) {
      const std::size_t at =
          static_cast<std::size_t>(w) * pad + static_cast<std::size_t>(r);
      if ((s.care[at] & (s.value[at] ^ query[w]) & kEvenDigits) != 0) {
        alive = false;
        break;
      }
    }
    if (!alive) {
      ++stats.step1_misses;
      continue;
    }
    // Step 2: odd (cell2) digits, only for surviving rows.
    ++stats.step2_evaluated;
    bool matched = true;
    for (int w = 0; w < s.wpr; ++w) {
      const std::size_t at =
          static_cast<std::size_t>(w) * pad + static_cast<std::size_t>(r);
      if ((s.care[at] & (s.value[at] ^ query[w]) & kOddDigits) != 0) {
        matched = false;
        break;
      }
    }
    if (matched) {
      match_mask[static_cast<std::size_t>(r) >> 6] |= 1ULL << (r & 63);
      ++stats.matches;
    }
  }
  return stats;
}

#if !defined(FETCAM_HAVE_AVX2)
// Stubs so the dispatch switch links in scalar-only builds; the tier is
// reported unavailable, so these are unreachable.
arch::SearchStats full_match_avx2(const ShardView& s,
                                  const std::uint64_t* query,
                                  std::uint64_t* match_mask) {
  return full_match_scalar(s, query, match_mask);
}
arch::SearchStats two_step_match_avx2(const ShardView& s,
                                      const std::uint64_t* query,
                                      std::uint64_t* match_mask) {
  return two_step_match_scalar(s, query, match_mask);
}
#endif

}  // namespace detail

PackedQuery PackedQuery::pack(const arch::BitWord& query) {
  PackedQuery q;
  q.cols = static_cast<int>(query.size());
  q.bits.assign((query.size() + 63) / 64, 0);
  for (std::size_t c = 0; c < query.size(); ++c) {
    if (query[c] != 0) q.bits[c >> 6] |= 1ULL << (c & 63);
  }
  return q;
}

PackedShard::PackedShard(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      rows_pad_(((rows + 63) / 64) * 64) {
  if (rows < 0 || cols <= 0) {
    throw std::invalid_argument("shard needs rows >= 0 and cols > 0");
  }
  const std::size_t words = static_cast<std::size_t>(rows_pad_) *
                            static_cast<std::size_t>(words_per_row_);
  care_.assign(words, 0);   // all-'X': nothing participates in matching
  value_.assign(words, 0);
  valid_.assign(mask_words(), 0);
}

void PackedShard::check_row(int row) const {
  if (row < 0 || row >= rows_) throw std::out_of_range("row out of range");
}

void PackedShard::check_query(const PackedQuery& query) const {
  if (query.cols != cols_) {
    throw std::invalid_argument("query width mismatch");
  }
}

detail::ShardView PackedShard::view() const {
  detail::ShardView v;
  v.care = care_.data();
  v.value = value_.data();
  v.valid = valid_.data();
  v.rows = rows_;
  v.rows_pad = rows_pad_;
  v.wpr = words_per_row_;
  return v;
}

void PackedShard::write(int row, const arch::TernaryWord& entry) {
  check_row(row);
  if (static_cast<int>(entry.size()) != cols_) {
    throw std::invalid_argument("entry width mismatch");
  }
  for (int w = 0; w < words_per_row_; ++w) {
    care_[plane_index(row, w)] = 0;
    value_[plane_index(row, w)] = 0;
  }
  for (int c = 0; c < cols_; ++c) {
    const arch::Ternary t = entry[static_cast<std::size_t>(c)];
    if (t == arch::Ternary::kX) continue;
    const std::size_t word = plane_index(row, c >> 6);
    const std::uint64_t bit = 1ULL << (c & 63);
    care_[word] |= bit;
    if (t == arch::Ternary::kOne) value_[word] |= bit;
  }
  valid_[static_cast<std::size_t>(row) >> 6] |= 1ULL << (row & 63);
}

void PackedShard::erase(int row) {
  check_row(row);
  valid_[static_cast<std::size_t>(row) >> 6] &= ~(1ULL << (row & 63));
}

bool PackedShard::valid(int row) const {
  check_row(row);
  return (valid_[static_cast<std::size_t>(row) >> 6] >> (row & 63)) & 1ULL;
}

arch::TernaryWord PackedShard::entry(int row) const {
  check_row(row);
  arch::TernaryWord out(static_cast<std::size_t>(cols_), arch::Ternary::kX);
  for (int c = 0; c < cols_; ++c) {
    const std::size_t word = plane_index(row, c >> 6);
    const std::uint64_t bit = 1ULL << (c & 63);
    if ((care_[word] & bit) == 0) continue;
    out[static_cast<std::size_t>(c)] = (value_[word] & bit) != 0
                                           ? arch::Ternary::kOne
                                           : arch::Ternary::kZero;
  }
  return out;
}

arch::SearchStats PackedShard::full_match(
    const PackedQuery& query, std::vector<std::uint64_t>& match_mask) const {
  return full_match(query, match_mask, active_kernel_tier());
}

arch::SearchStats PackedShard::full_match(const PackedQuery& query,
                                          std::vector<std::uint64_t>& match_mask,
                                          KernelTier tier) const {
  check_query(query);
  match_mask.assign(mask_words(), 0);
  if (rows_ == 0) {
    arch::SearchStats stats;
    return stats;
  }
  switch (tier) {
    case KernelTier::kAvx2:
      return detail::full_match_avx2(view(), query.bits.data(),
                                     match_mask.data());
    case KernelTier::kScalar:
      break;
  }
  return detail::full_match_scalar(view(), query.bits.data(),
                                   match_mask.data());
}

arch::SearchStats PackedShard::two_step_match(
    const PackedQuery& query, std::vector<std::uint64_t>& match_mask) const {
  return two_step_match(query, match_mask, active_kernel_tier());
}

arch::SearchStats PackedShard::two_step_match(
    const PackedQuery& query, std::vector<std::uint64_t>& match_mask,
    KernelTier tier) const {
  check_query(query);
  if (cols_ % 2 != 0) {
    throw std::invalid_argument(
        "two-step search needs an even word length (shard is " +
        std::to_string(rows_) + " rows x " + std::to_string(cols_) + " cols)");
  }
  match_mask.assign(mask_words(), 0);
  if (rows_ == 0) {
    arch::SearchStats stats;
    return stats;
  }
  switch (tier) {
    case KernelTier::kAvx2:
      return detail::two_step_match_avx2(view(), query.bits.data(),
                                         match_mask.data());
    case KernelTier::kScalar:
      break;
  }
  return detail::two_step_match_scalar(view(), query.bits.data(),
                                       match_mask.data());
}

std::vector<bool> PackedShard::search(const arch::BitWord& query) const {
  std::vector<std::uint64_t> mask;
  full_match(PackedQuery::pack(query), mask);
  std::vector<bool> out(static_cast<std::size_t>(rows_), false);
  for (int r = 0; r < rows_; ++r) {
    out[static_cast<std::size_t>(r)] =
        (mask[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL;
  }
  return out;
}

arch::ScheduledSearchResult PackedShard::two_step_search(
    const arch::BitWord& query) const {
  std::vector<std::uint64_t> mask;
  arch::ScheduledSearchResult res;
  res.stats = two_step_match(PackedQuery::pack(query), mask);
  res.matches.assign(static_cast<std::size_t>(rows_), false);
  for (int r = 0; r < rows_; ++r) {
    res.matches[static_cast<std::size_t>(r)] =
        (mask[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL;
  }
  return res;
}

}  // namespace fetcam::engine
