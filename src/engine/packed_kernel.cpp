#include "engine/packed_kernel.hpp"

#include <atomic>
#include <bit>
#include <stdexcept>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace fetcam::engine {

namespace {

// Digit parity masks: digit c sits at bit (c & 63), and 64 is even, so
// even global digits are even bit positions in every word.
constexpr std::uint64_t kEvenDigits = 0x5555555555555555ULL;
constexpr std::uint64_t kOddDigits = 0xAAAAAAAAAAAAAAAAULL;

bool cpu_has_avx2() {
#if defined(FETCAM_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// -1 = no override; otherwise the KernelTier value.  Relaxed is enough:
// the override is a test/bench knob set between runs, not a hot-path
// synchronization point.
std::atomic<int> g_tier_override{-1};

}  // namespace

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar: return "scalar";
    case KernelTier::kAvx2: return "avx2";
  }
  return "?";
}

bool kernel_tier_available(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar: return true;
    case KernelTier::kAvx2: return cpu_has_avx2();
  }
  return false;
}

KernelTier best_kernel_tier() {
  return cpu_has_avx2() ? KernelTier::kAvx2 : KernelTier::kScalar;
}

KernelTier active_kernel_tier() {
  const int o = g_tier_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<KernelTier>(o);
  return best_kernel_tier();
}

void set_kernel_tier_override(KernelTier tier) {
  if (!kernel_tier_available(tier)) {
    throw std::invalid_argument(std::string("kernel tier ") +
                                kernel_tier_name(tier) +
                                " is not available on this build/CPU");
  }
  g_tier_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void clear_kernel_tier_override() {
  g_tier_override.store(-1, std::memory_order_relaxed);
}

namespace detail {

arch::SearchStats full_match_scalar(const ShardView& s,
                                    const std::uint64_t* query,
                                    std::uint64_t* match_mask) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  stats.step2_evaluated = s.rows;  // single-step: every row evaluates fully
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  for (int r = 0; r < s.rows; ++r) {
    if (((s.valid[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL) ==
        0) {
      continue;
    }
    bool matched = true;
    for (int w = 0; w < s.wpr; ++w) {
      const std::size_t at =
          static_cast<std::size_t>(w) * pad + static_cast<std::size_t>(r);
      if ((s.care[at] & (s.value[at] ^ query[w])) != 0) {
        matched = false;
        break;
      }
    }
    if (matched) {
      match_mask[static_cast<std::size_t>(r) >> 6] |= 1ULL << (r & 63);
      ++stats.matches;
    }
  }
  return stats;
}

arch::SearchStats two_step_match_scalar(const ShardView& s,
                                        const std::uint64_t* query,
                                        std::uint64_t* match_mask) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  for (int r = 0; r < s.rows; ++r) {
    if (((s.valid[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL) ==
        0) {
      // Invalid rows stay erased-to-'0' at cell1 positions and miss in
      // step 1 (same accounting as arch::two_step_search).
      ++stats.step1_misses;
      continue;
    }
    // Step 1: even (cell1) digits of every word.
    bool alive = true;
    for (int w = 0; w < s.wpr; ++w) {
      const std::size_t at =
          static_cast<std::size_t>(w) * pad + static_cast<std::size_t>(r);
      if ((s.care[at] & (s.value[at] ^ query[w]) & kEvenDigits) != 0) {
        alive = false;
        break;
      }
    }
    if (!alive) {
      ++stats.step1_misses;
      continue;
    }
    // Step 2: odd (cell2) digits, only for surviving rows.
    ++stats.step2_evaluated;
    bool matched = true;
    for (int w = 0; w < s.wpr; ++w) {
      const std::size_t at =
          static_cast<std::size_t>(w) * pad + static_cast<std::size_t>(r);
      if ((s.care[at] & (s.value[at] ^ query[w]) & kOddDigits) != 0) {
        matched = false;
        break;
      }
    }
    if (matched) {
      match_mask[static_cast<std::size_t>(r) >> 6] |= 1ULL << (r & 63);
      ++stats.matches;
    }
  }
  return stats;
}

namespace {

// Shared shape of the blocked scalar kernels: one pass over the planar
// words per 64-row block, each (care, value) word pair loaded ONCE and
// tested against all NQ queries.  A single mismatch accumulator per query
// suffices for both steps because OR commutes with the parity masks:
// OR_w(mis_w & even) == (OR_w mis_w) & even — so the step-1 / step-2 zero
// tests read the even / odd halves of the same accumulator.  NQ is a
// template parameter so the accumulator array unrolls into registers.
template <int NQ>
void full_match_block_scalar_impl(const ShardView& s,
                                  const std::uint64_t* const* queries,
                                  std::uint64_t* const* match_masks,
                                  arch::SearchStats* stats) {
  for (int q = 0; q < NQ; ++q) {
    stats[q] = arch::SearchStats{};
    stats[q].rows = s.rows;
    stats[q].step2_evaluated = s.rows;  // single-step accounting
  }
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  for (int b = 0; b < blocks; ++b) {
    std::uint64_t ok[NQ] = {};
    for (int r = 0; r < 64; ++r) {
      const std::size_t row = static_cast<std::size_t>(b) * 64 +
                              static_cast<std::size_t>(r);
      std::uint64_t acc[NQ] = {};
      for (int w = 0; w < s.wpr; ++w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + row;
        const std::uint64_t c = s.care[at];
        const std::uint64_t v = s.value[at];
        for (int q = 0; q < NQ; ++q) acc[q] |= c & (v ^ queries[q][w]);
      }
      for (int q = 0; q < NQ; ++q) {
        ok[q] |= static_cast<std::uint64_t>(acc[q] == 0) << r;
      }
    }
    const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
    for (int q = 0; q < NQ; ++q) {
      const std::uint64_t match = ok[q] & valid;
      match_masks[q][static_cast<std::size_t>(b)] = match;
      stats[q].matches += std::popcount(match);
    }
  }
}

template <int NQ>
void two_step_match_block_scalar_impl(const ShardView& s,
                                      const std::uint64_t* const* queries,
                                      std::uint64_t* const* match_masks,
                                      arch::SearchStats* stats) {
  for (int q = 0; q < NQ; ++q) {
    stats[q] = arch::SearchStats{};
    stats[q].rows = s.rows;
  }
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  for (int b = 0; b < blocks; ++b) {
    std::uint64_t step1_ok[NQ] = {};
    std::uint64_t step2_ok[NQ] = {};
    for (int r = 0; r < 64; ++r) {
      const std::size_t row = static_cast<std::size_t>(b) * 64 +
                              static_cast<std::size_t>(r);
      std::uint64_t acc[NQ] = {};
      for (int w = 0; w < s.wpr; ++w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + row;
        const std::uint64_t c = s.care[at];
        const std::uint64_t v = s.value[at];
        for (int q = 0; q < NQ; ++q) acc[q] |= c & (v ^ queries[q][w]);
      }
      for (int q = 0; q < NQ; ++q) {
        step1_ok[q] |=
            static_cast<std::uint64_t>((acc[q] & kEvenDigits) == 0) << r;
        step2_ok[q] |=
            static_cast<std::uint64_t>((acc[q] & kOddDigits) == 0) << r;
      }
    }
    // Invalid (and padded) rows miss in step 1, like the single-query
    // tiers; per-block popcount accounting reproduces the per-row
    // counters exactly (same argument as the AVX2 tier).
    const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
    const int real_rows = s.rows - b * 64 < 64 ? s.rows - b * 64 : 64;
    for (int q = 0; q < NQ; ++q) {
      const std::uint64_t alive = step1_ok[q] & valid;
      const int alive_count = std::popcount(alive);
      stats[q].step1_misses += real_rows - alive_count;
      stats[q].step2_evaluated += alive_count;
      const std::uint64_t match = alive & step2_ok[q];
      match_masks[q][static_cast<std::size_t>(b)] = match;
      stats[q].matches += std::popcount(match);
    }
  }
}

}  // namespace

void full_match_block_scalar(const ShardView& s,
                             const std::uint64_t* const* queries, int nq,
                             std::uint64_t* const* match_masks,
                             arch::SearchStats* stats) {
  switch (nq) {
    case 1: return full_match_block_scalar_impl<1>(s, queries, match_masks,
                                                   stats);
    case 2: return full_match_block_scalar_impl<2>(s, queries, match_masks,
                                                   stats);
    case 3: return full_match_block_scalar_impl<3>(s, queries, match_masks,
                                                   stats);
    case 4: return full_match_block_scalar_impl<4>(s, queries, match_masks,
                                                   stats);
    case 5: return full_match_block_scalar_impl<5>(s, queries, match_masks,
                                                   stats);
    case 6: return full_match_block_scalar_impl<6>(s, queries, match_masks,
                                                   stats);
    case 7: return full_match_block_scalar_impl<7>(s, queries, match_masks,
                                                   stats);
    case 8: return full_match_block_scalar_impl<8>(s, queries, match_masks,
                                                   stats);
    default:
      throw std::invalid_argument("block size out of range");
  }
}

void two_step_match_block_scalar(const ShardView& s,
                                 const std::uint64_t* const* queries, int nq,
                                 std::uint64_t* const* match_masks,
                                 arch::SearchStats* stats) {
  switch (nq) {
    case 1: return two_step_match_block_scalar_impl<1>(s, queries,
                                                       match_masks, stats);
    case 2: return two_step_match_block_scalar_impl<2>(s, queries,
                                                       match_masks, stats);
    case 3: return two_step_match_block_scalar_impl<3>(s, queries,
                                                       match_masks, stats);
    case 4: return two_step_match_block_scalar_impl<4>(s, queries,
                                                       match_masks, stats);
    case 5: return two_step_match_block_scalar_impl<5>(s, queries,
                                                       match_masks, stats);
    case 6: return two_step_match_block_scalar_impl<6>(s, queries,
                                                       match_masks, stats);
    case 7: return two_step_match_block_scalar_impl<7>(s, queries,
                                                       match_masks, stats);
    case 8: return two_step_match_block_scalar_impl<8>(s, queries,
                                                       match_masks, stats);
    default:
      throw std::invalid_argument("block size out of range");
  }
}

#if !defined(FETCAM_HAVE_AVX2)
// Stubs so the dispatch switch links in scalar-only builds; the tier is
// reported unavailable, so these are unreachable.
arch::SearchStats full_match_avx2(const ShardView& s,
                                  const std::uint64_t* query,
                                  std::uint64_t* match_mask) {
  return full_match_scalar(s, query, match_mask);
}
arch::SearchStats two_step_match_avx2(const ShardView& s,
                                      const std::uint64_t* query,
                                      std::uint64_t* match_mask) {
  return two_step_match_scalar(s, query, match_mask);
}
void full_match_block_avx2(const ShardView& s,
                           const std::uint64_t* const* queries, int nq,
                           std::uint64_t* const* match_masks,
                           arch::SearchStats* stats) {
  full_match_block_scalar(s, queries, nq, match_masks, stats);
}
void two_step_match_block_avx2(const ShardView& s,
                               const std::uint64_t* const* queries, int nq,
                               std::uint64_t* const* match_masks,
                               arch::SearchStats* stats) {
  two_step_match_block_scalar(s, queries, nq, match_masks, stats);
}
#endif

}  // namespace detail

PackedQuery PackedQuery::pack(const arch::BitWord& query) {
  PackedQuery q;
  q.repack(query);
  return q;
}

void PackedQuery::repack(const arch::BitWord& query) {
  cols = static_cast<int>(query.size());
  bits.assign((query.size() + 63) / 64, 0);
  std::size_t c = 0;
#if defined(__SSE2__)
  // 16 digits per step: nonzero bytes -> a 16-bit mask (byte-per-digit
  // semantics preserved: any nonzero value is a 1, same as `!= 0`).
  for (; c + 16 <= query.size(); c += 16) {
    const __m128i d = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(query.data() + c));
    const std::uint64_t ones = static_cast<std::uint64_t>(
        ~_mm_movemask_epi8(_mm_cmpeq_epi8(d, _mm_setzero_si128())) & 0xFFFF);
    bits[c >> 6] |= ones << (c & 63);
  }
#endif
  for (; c < query.size(); ++c) {
    bits[c >> 6] |= static_cast<std::uint64_t>(query[c] != 0) << (c & 63);
  }
}

PackedShard::PackedShard(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      rows_pad_(((rows + 63) / 64) * 64) {
  if (rows < 0 || cols <= 0) {
    throw std::invalid_argument("shard needs rows >= 0 and cols > 0");
  }
  const std::size_t words = static_cast<std::size_t>(rows_pad_) *
                            static_cast<std::size_t>(words_per_row_);
  care_.assign(words, 0);   // all-'X': nothing participates in matching
  value_.assign(words, 0);
  valid_.assign(mask_words(), 0);
}

void PackedShard::check_row(int row) const {
  if (row < 0 || row >= rows_) throw std::out_of_range("row out of range");
}

void PackedShard::check_query(const PackedQuery& query) const {
  if (query.cols != cols_) {
    throw std::invalid_argument("query width mismatch");
  }
}

detail::ShardView PackedShard::view() const {
  detail::ShardView v;
  v.care = care_.data();
  v.value = value_.data();
  v.valid = valid_.data();
  v.rows = rows_;
  v.rows_pad = rows_pad_;
  v.wpr = words_per_row_;
  return v;
}

void PackedShard::write(int row, const arch::TernaryWord& entry) {
  check_row(row);
  if (static_cast<int>(entry.size()) != cols_) {
    throw std::invalid_argument("entry width mismatch");
  }
  for (int w = 0; w < words_per_row_; ++w) {
    care_[plane_index(row, w)] = 0;
    value_[plane_index(row, w)] = 0;
  }
  for (int c = 0; c < cols_; ++c) {
    const arch::Ternary t = entry[static_cast<std::size_t>(c)];
    if (t == arch::Ternary::kX) continue;
    const std::size_t word = plane_index(row, c >> 6);
    const std::uint64_t bit = 1ULL << (c & 63);
    care_[word] |= bit;
    if (t == arch::Ternary::kOne) value_[word] |= bit;
  }
  valid_[static_cast<std::size_t>(row) >> 6] |= 1ULL << (row & 63);
}

void PackedShard::erase(int row) {
  check_row(row);
  valid_[static_cast<std::size_t>(row) >> 6] &= ~(1ULL << (row & 63));
}

bool PackedShard::valid(int row) const {
  check_row(row);
  return (valid_[static_cast<std::size_t>(row) >> 6] >> (row & 63)) & 1ULL;
}

arch::TernaryWord PackedShard::entry(int row) const {
  check_row(row);
  arch::TernaryWord out(static_cast<std::size_t>(cols_), arch::Ternary::kX);
  for (int c = 0; c < cols_; ++c) {
    const std::size_t word = plane_index(row, c >> 6);
    const std::uint64_t bit = 1ULL << (c & 63);
    if ((care_[word] & bit) == 0) continue;
    out[static_cast<std::size_t>(c)] = (value_[word] & bit) != 0
                                           ? arch::Ternary::kOne
                                           : arch::Ternary::kZero;
  }
  return out;
}

arch::SearchStats PackedShard::full_match(
    const PackedQuery& query, std::vector<std::uint64_t>& match_mask) const {
  return full_match(query, match_mask, active_kernel_tier());
}

arch::SearchStats PackedShard::full_match(const PackedQuery& query,
                                          std::vector<std::uint64_t>& match_mask,
                                          KernelTier tier) const {
  check_query(query);
  match_mask.assign(mask_words(), 0);
  if (rows_ == 0) {
    arch::SearchStats stats;
    return stats;
  }
  switch (tier) {
    case KernelTier::kAvx2:
      return detail::full_match_avx2(view(), query.bits.data(),
                                     match_mask.data());
    case KernelTier::kScalar:
      break;
  }
  return detail::full_match_scalar(view(), query.bits.data(),
                                   match_mask.data());
}

arch::SearchStats PackedShard::two_step_match(
    const PackedQuery& query, std::vector<std::uint64_t>& match_mask) const {
  return two_step_match(query, match_mask, active_kernel_tier());
}

arch::SearchStats PackedShard::two_step_match(
    const PackedQuery& query, std::vector<std::uint64_t>& match_mask,
    KernelTier tier) const {
  check_query(query);
  if (cols_ % 2 != 0) {
    throw std::invalid_argument(
        "two-step search needs an even word length (shard is " +
        std::to_string(rows_) + " rows x " + std::to_string(cols_) + " cols)");
  }
  match_mask.assign(mask_words(), 0);
  if (rows_ == 0) {
    arch::SearchStats stats;
    return stats;
  }
  switch (tier) {
    case KernelTier::kAvx2:
      return detail::two_step_match_avx2(view(), query.bits.data(),
                                         match_mask.data());
    case KernelTier::kScalar:
      break;
  }
  return detail::two_step_match_scalar(view(), query.bits.data(),
                                       match_mask.data());
}

void PackedShard::check_block(const PackedQuery* const* queries,
                              int nq) const {
  if (nq < 1 || nq > kMaxQueryBlock) {
    throw std::invalid_argument("query block size must be in [1, " +
                                std::to_string(kMaxQueryBlock) + "], got " +
                                std::to_string(nq));
  }
  for (int q = 0; q < nq; ++q) check_query(*queries[q]);
}

void PackedShard::full_match_block(const PackedQuery* const* queries, int nq,
                                   std::uint64_t* const* match_masks,
                                   arch::SearchStats* stats) const {
  full_match_block(queries, nq, match_masks, stats, active_kernel_tier());
}

void PackedShard::full_match_block(const PackedQuery* const* queries, int nq,
                                   std::uint64_t* const* match_masks,
                                   arch::SearchStats* stats,
                                   KernelTier tier) const {
  check_block(queries, nq);
  if (rows_ == 0) {
    for (int q = 0; q < nq; ++q) stats[q] = arch::SearchStats{};
    return;
  }
  const std::uint64_t* qbits[kMaxQueryBlock];
  for (int q = 0; q < nq; ++q) qbits[q] = queries[q]->bits.data();
  switch (tier) {
    case KernelTier::kAvx2:
      detail::full_match_block_avx2(view(), qbits, nq, match_masks, stats);
      return;
    case KernelTier::kScalar:
      break;
  }
  detail::full_match_block_scalar(view(), qbits, nq, match_masks, stats);
}

void PackedShard::two_step_match_block(const PackedQuery* const* queries,
                                       int nq,
                                       std::uint64_t* const* match_masks,
                                       arch::SearchStats* stats) const {
  two_step_match_block(queries, nq, match_masks, stats, active_kernel_tier());
}

void PackedShard::two_step_match_block(const PackedQuery* const* queries,
                                       int nq,
                                       std::uint64_t* const* match_masks,
                                       arch::SearchStats* stats,
                                       KernelTier tier) const {
  check_block(queries, nq);
  if (cols_ % 2 != 0) {
    throw std::invalid_argument(
        "two-step search needs an even word length (shard is " +
        std::to_string(rows_) + " rows x " + std::to_string(cols_) + " cols)");
  }
  if (rows_ == 0) {
    for (int q = 0; q < nq; ++q) stats[q] = arch::SearchStats{};
    return;
  }
  const std::uint64_t* qbits[kMaxQueryBlock];
  for (int q = 0; q < nq; ++q) qbits[q] = queries[q]->bits.data();
  switch (tier) {
    case KernelTier::kAvx2:
      detail::two_step_match_block_avx2(view(), qbits, nq, match_masks,
                                        stats);
      return;
    case KernelTier::kScalar:
      break;
  }
  detail::two_step_match_block_scalar(view(), qbits, nq, match_masks, stats);
}

std::vector<bool> PackedShard::search(const arch::BitWord& query) const {
  std::vector<std::uint64_t> mask;
  full_match(PackedQuery::pack(query), mask);
  std::vector<bool> out(static_cast<std::size_t>(rows_), false);
  for (int r = 0; r < rows_; ++r) {
    out[static_cast<std::size_t>(r)] =
        (mask[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL;
  }
  return out;
}

arch::ScheduledSearchResult PackedShard::two_step_search(
    const arch::BitWord& query) const {
  std::vector<std::uint64_t> mask;
  arch::ScheduledSearchResult res;
  res.stats = two_step_match(PackedQuery::pack(query), mask);
  res.matches.assign(static_cast<std::size_t>(rows_), false);
  for (int r = 0; r < rows_; ++r) {
    res.matches[static_cast<std::size_t>(r)] =
        (mask[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL;
  }
  return res;
}

}  // namespace fetcam::engine
