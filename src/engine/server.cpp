#include "engine/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/stats.hpp"
#include "engine/wire.hpp"
#include "obs/trace.hpp"

namespace fetcam::engine {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

struct SearchServer::Impl {
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;  ///< accept ordinal (stats correlation)
    /// Unparsed inbound bytes (IO thread only).
    std::vector<std::uint8_t> rx;
    /// Outbound bytes.  The completion thread appends under tx_mu; the IO
    /// thread appends/consumes under the same lock.
    std::mutex tx_mu;
    std::vector<std::uint8_t> tx;
    std::size_t tx_off = 0;
    /// Request frames submitted but not yet answered.
    std::atomic<std::size_t> in_flight{0};
    // Per-connection telemetry (stats snapshot "connection" section).
    std::atomic<std::uint64_t> frames{0};    ///< accepted request frames
    std::atomic<std::uint64_t> rejected{0};  ///< malformed frames
    std::atomic<std::uint64_t> stalls{0};    ///< backpressure read pauses
    /// IO-thread state: closing = no more reads, close once drained.
    bool closing = false;
    bool reading = true;     ///< EPOLLIN armed
    bool want_write = false; ///< EPOLLOUT armed
  };

  /// One response owed on a connection, in FIFO submission order.  Either
  /// an engine future (search batch) or a stats scrape marker — stats
  /// replies ride the same queue so per-connection response order always
  /// equals request order.
  struct Pending {
    std::shared_ptr<Connection> conn;
    std::future<BatchResult> future;
    bool is_stats = false;
    bool is_nearest = false;  ///< encode kNearestResult instead of records
    std::uint64_t trace_id = 0;
  };

  explicit Impl(SearchServer& s) : self(s) {}

  SearchServer& self;
  int listen_fd = -1;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread io_thread;
  std::thread completion_thread;

  /// IO-thread-only registry (the completion thread holds shared_ptrs).
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  /// Wire-level request correlation ids (trace spans + slow-query log).
  std::atomic<std::uint64_t> next_trace_id{1};

  std::mutex pending_mu;
  std::condition_variable pending_cv;
  std::deque<Pending> pending;
  bool stop_requested = false;  ///< guarded by pending_mu
  /// Set by the IO thread once it has stopped accepting and reading (so no
  /// further submit_frame can happen); the completion thread must not
  /// declare the drain finished before this.  Guarded by pending_mu.
  bool submissions_done = false;

  std::atomic<bool> stopping{false};
  std::atomic<bool> drained{false};

  /// IO-thread-only: set once the drain begins (listener closed), arming
  /// the force-close deadline for peers that never read their responses.
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  // ---- helpers (IO thread unless noted) ---------------------------------

  void wake_io() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd, &one, sizeof(one));  // completion thread too
  }

  void update_interest(const std::shared_ptr<Connection>& conn) {
    epoll_event ev{};
    ev.events = EPOLLRDHUP;
    if (conn->reading) ev.events |= EPOLLIN;
    if (conn->want_write) ev.events |= EPOLLOUT;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void close_conn(const std::shared_ptr<Connection>& conn) {
    if (conn->fd < 0) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conns.erase(conn->fd);
    conn->fd = -1;
    self.open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Close once the connection owes nothing: no queued bytes, no frames
  /// still in the engine.
  void maybe_close(const std::shared_ptr<Connection>& conn) {
    if (!conn->closing || conn->fd < 0) return;
    // in_flight must be read BEFORE the tx check: the completion thread
    // encodes the response into tx (under tx_mu) and only then decrements
    // in_flight, so observing 0 here guarantees the tx check below sees
    // any bytes that response queued.  The reverse order could see tx
    // empty pre-encode and in_flight 0 post-decrement, closing with the
    // final response unsent.
    if (conn->in_flight.load() != 0) return;
    bool tx_empty;
    {
      const std::lock_guard<std::mutex> lock(conn->tx_mu);
      tx_empty = conn->tx_off >= conn->tx.size();
    }
    if (tx_empty) close_conn(conn);
  }

  /// Error frame + close-after-flush; the rest of the server is untouched.
  void reject(const std::shared_ptr<Connection>& conn, wire::ErrorCode code,
              const std::string& message) {
    self.frames_rejected_.fetch_add(1, std::memory_order_relaxed);
    conn->rejected.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(conn->tx_mu);
      wire::ErrorFrame err;
      err.code = code;
      err.message = message;
      wire::encode_error(conn->tx, err);
    }
    conn->closing = true;
    conn->reading = false;
    conn->want_write = true;
    update_interest(conn);
  }

  void flush_tx(const std::shared_ptr<Connection>& conn) {
    bool done = false;
    {
      const std::lock_guard<std::mutex> lock(conn->tx_mu);
      while (conn->tx_off < conn->tx.size()) {
        const ssize_t n =
            ::send(conn->fd, conn->tx.data() + conn->tx_off,
                   conn->tx.size() - conn->tx_off, MSG_NOSIGNAL);
        if (n > 0) {
          conn->tx_off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // Peer is gone: drop the connection, others are unaffected.
        conn->tx.clear();
        conn->tx_off = 0;
        conn->closing = true;
        done = true;
        break;
      }
      if (conn->tx_off >= conn->tx.size()) {
        conn->tx.clear();
        conn->tx_off = 0;
        done = true;
      }
    }
    if (conn->fd >= 0) {
      conn->want_write = !done;
      update_interest(conn);
    }
    maybe_close(conn);
  }

  void handle_accept() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or transient error: epoll will re-arm
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (self.options_.sndbuf_bytes > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &self.options_.sndbuf_bytes,
                     sizeof(self.options_.sndbuf_bytes));
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->id = self.accepted_.load(std::memory_order_relaxed) + 1;
      conns.emplace(fd, conn);
      self.open_conns_.fetch_add(1, std::memory_order_relaxed);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      self.accepted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Shared tail of frame admission: FIFO-order the pending response and
  /// apply pipelining backpressure.
  void enqueue_pending(const std::shared_ptr<Connection>& conn, Pending p) {
    conn->in_flight.fetch_add(1);
    conn->frames.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(pending_mu);
      pending.push_back(std::move(p));
    }
    pending_cv.notify_one();
    if (conn->in_flight.load() >= self.options_.max_pipeline) {
      conn->reading = false;  // backpressure: resume when responses drain
      conn->stalls.fetch_add(1, std::memory_order_relaxed);
      self.backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
      update_interest(conn);
    }
  }

  void submit_frame(const std::shared_ptr<Connection>& conn,
                    const wire::SearchBatchFrame& frame) {
    const std::uint64_t trace_id =
        next_trace_id.fetch_add(1, std::memory_order_relaxed);
    obs::ScopedSpan span("wire.submit", "server", trace_id);
    const int cols = self.cols_;
    std::vector<Request> batch;
    batch.reserve(frame.count());
    const std::uint32_t wpq = frame.words_per_query;
    for (std::uint32_t q = 0; q < frame.count(); ++q) {
      arch::BitWord query(static_cast<std::size_t>(cols), 0);
      const std::uint64_t* words = frame.bits.data() +
                                   static_cast<std::size_t>(q) * wpq;
      for (int c = 0; c < cols; ++c) {
        query[static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>((words[c >> 6] >> (c & 63)) & 1ULL);
      }
      batch.push_back(make_search(std::move(query)));
    }
    Pending p;
    p.conn = conn;
    p.trace_id = trace_id;
    p.future = self.engine_.submit(std::move(batch), trace_id);
    enqueue_pending(conn, std::move(p));
  }

  void submit_nearest(const std::shared_ptr<Connection>& conn,
                      const wire::NearestBatchFrame& frame) {
    const std::uint64_t trace_id =
        next_trace_id.fetch_add(1, std::memory_order_relaxed);
    obs::ScopedSpan span("wire.submit_nearest", "server", trace_id);
    const int cols = self.cols_;
    std::vector<Request> batch;
    batch.reserve(frame.count());
    const std::uint32_t wpq = frame.words_per_query;
    for (std::uint32_t q = 0; q < frame.count(); ++q) {
      arch::BitWord query(static_cast<std::size_t>(cols), 0);
      const std::uint64_t* words = frame.bits.data() +
                                   static_cast<std::size_t>(q) * wpq;
      for (int c = 0; c < cols; ++c) {
        query[static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>((words[c >> 6] >> (c & 63)) & 1ULL);
      }
      batch.push_back(make_search_nearest(
          std::move(query), static_cast<int>(frame.k),
          static_cast<int>(frame.threshold)));
    }
    Pending p;
    p.conn = conn;
    p.is_nearest = true;
    p.trace_id = trace_id;
    p.future = self.engine_.submit(std::move(batch), trace_id);
    enqueue_pending(conn, std::move(p));
  }

  void submit_stats(const std::shared_ptr<Connection>& conn) {
    Pending p;
    p.conn = conn;
    p.is_stats = true;
    p.trace_id = next_trace_id.fetch_add(1, std::memory_order_relaxed);
    enqueue_pending(conn, std::move(p));
  }

  /// Parse every complete frame currently buffered on `conn`.
  void parse_frames(const std::shared_ptr<Connection>& conn) {
    std::size_t off = 0;
    while (!conn->closing && conn->reading) {
      if (conn->rx.size() - off < wire::kHeaderSize) break;
      std::optional<wire::ErrorCode> header_error;
      const wire::FrameHeader header =
          wire::decode_header(conn->rx.data() + off, header_error);
      if (header_error) {
        reject(conn, *header_error, "bad frame header");
        break;
      }
      // Direction gate, the moment the header decodes: a known but
      // response-direction opcode (a client echoing kSearchResult, say)
      // is as unacceptable as an unknown one, and is rejected BEFORE the
      // server waits on — or buffers — a single payload byte for it.
      if (!wire::is_request_frame(header.type)) {
        reject(conn, wire::ErrorCode::kBadType,
               "frame type is not a request (kSearchBatch, kNearest and "
               "kStats are accepted)");
        break;
      }
      if (conn->rx.size() - off < wire::kHeaderSize + header.payload_len) {
        break;  // wait for the rest of the payload
      }
      const std::uint8_t* payload = conn->rx.data() + off + wire::kHeaderSize;
      off += wire::kHeaderSize + header.payload_len;
      if (header.type == wire::FrameType::kStats) {
        // A scrape carries no payload by definition; junk bytes mean the
        // peer's framing is broken, and a broken peer gets contained.
        if (header.payload_len != 0) {
          reject(conn, wire::ErrorCode::kMalformed,
                 "stats frame must have an empty payload");
          break;
        }
        submit_stats(conn);
        continue;
      }
      if (header.type == wire::FrameType::kNearest) {
        const auto frame =
            wire::decode_nearest_batch(payload, header.payload_len);
        if (!frame) {
          reject(conn, wire::ErrorCode::kMalformed,
                 "nearest batch payload does not parse");
          break;
        }
        const std::uint32_t expected_wpq =
            static_cast<std::uint32_t>((self.cols_ + 63) / 64);
        if (frame->count() > 0 && frame->words_per_query != expected_wpq) {
          reject(conn, wire::ErrorCode::kBadWidth,
                 "words_per_query does not match the table width");
          break;
        }
        submit_nearest(conn, *frame);
        continue;
      }
      const auto frame =
          wire::decode_search_batch(payload, header.payload_len);
      if (!frame) {
        reject(conn, wire::ErrorCode::kMalformed,
               "search batch payload does not parse");
        break;
      }
      const std::uint32_t expected_wpq =
          static_cast<std::uint32_t>((self.cols_ + 63) / 64);
      if (frame->count() > 0 && frame->words_per_query != expected_wpq) {
        reject(conn, wire::ErrorCode::kBadWidth,
               "words_per_query does not match the table width");
        break;
      }
      submit_frame(conn, *frame);
    }
    conn->rx.erase(conn->rx.begin(),
                   conn->rx.begin() + static_cast<std::ptrdiff_t>(off));
  }

  void handle_readable(const std::shared_ptr<Connection>& conn) {
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->rx.insert(conn->rx.end(), buf, buf + n);
        if (conn->rx.size() > static_cast<std::size_t>(sizeof(buf))) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error: stop reading; in-flight responses still flush.
      conn->reading = false;
      conn->closing = true;
      update_interest(conn);
      break;
    }
    parse_frames(conn);
    if (conn->fd >= 0) {
      flush_tx(conn);  // also handles maybe_close
    }
  }

  /// eventfd wake: completion results landed, or stop was requested.
  void handle_wake() {
    std::uint64_t drainv = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(event_fd, &drainv, sizeof(drainv));
    if (stopping.load() && listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
      for (auto& [fd, conn] : conns) {
        conn->reading = false;
        conn->closing = true;
        update_interest(conn);
      }
      {
        const std::lock_guard<std::mutex> lock(pending_mu);
        submissions_done = true;
      }
      pending_cv.notify_all();
    }
    // Snapshot: flush_tx can close (and erase) connections mid-walk.
    std::vector<std::shared_ptr<Connection>> snapshot;
    snapshot.reserve(conns.size());
    for (auto& [fd, conn] : conns) snapshot.push_back(conn);
    for (const auto& conn : snapshot) {
      if (conn->fd < 0) continue;
      if (!conn->closing && !conn->reading &&
          conn->in_flight.load() < self.options_.max_pipeline) {
        conn->reading = true;  // backpressure released
        update_interest(conn);
        parse_frames(conn);    // frames may already be buffered
      }
      flush_tx(conn);
    }
  }

  void io_loop() {
    epoll_event events[64];
    for (;;) {
      if (stopping.load() && listen_fd < 0) {
        const auto now = std::chrono::steady_clock::now();
        if (!drain_deadline_set) {
          drain_deadline_set = true;
          drain_deadline = now + std::chrono::milliseconds(
                                     self.options_.drain_timeout_ms);
        } else if (now >= drain_deadline && !conns.empty()) {
          // Bounded drain: a peer that stopped reading keeps its tx
          // buffer pinned forever — force-close whatever is left rather
          // than hanging stop() (and the destructor) indefinitely.
          std::vector<std::shared_ptr<Connection>> remaining;
          remaining.reserve(conns.size());
          for (auto& [fd, conn] : conns) remaining.push_back(conn);
          self.force_closes_.fetch_add(remaining.size(),
                                       std::memory_order_relaxed);
          for (const auto& conn : remaining) close_conn(conn);
        }
        if (drained.load()) {
          bool idle = true;
          for (auto& [fd, conn] : conns) {
            const std::lock_guard<std::mutex> lock(conn->tx_mu);
            if (conn->in_flight.load() > 0 ||
                conn->tx_off < conn->tx.size()) {
              idle = false;
              break;
            }
          }
          if (idle) break;
        }
      }
      const int n = ::epoll_wait(epoll_fd, events, 64, 100);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == event_fd) {
          handle_wake();
          continue;
        }
        if (fd == listen_fd) {
          handle_accept();
          continue;
        }
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;
        const std::shared_ptr<Connection> conn = it->second;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          conn->reading = false;
          conn->closing = true;
        }
        if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
          if (conn->reading) {
            handle_readable(conn);
          } else {
            maybe_close(conn);
          }
        }
        if (conn->fd >= 0 && (events[i].events & EPOLLOUT)) {
          flush_tx(conn);
        }
      }
    }
    // Teardown: everything owed has been flushed (or the peer vanished).
    std::vector<std::shared_ptr<Connection>> remaining;
    for (auto& [fd, conn] : conns) remaining.push_back(conn);
    for (const auto& conn : remaining) close_conn(conn);
  }

  void completion_loop() {
    for (;;) {
      Pending p;
      {
        std::unique_lock<std::mutex> lock(pending_mu);
        pending_cv.wait(lock, [&] {
          return (stop_requested && submissions_done) || !pending.empty();
        });
        if (pending.empty()) {
          // Stop requested, the IO thread can submit no more, and nothing
          // is left: the engine owes us nothing.
          drained.store(true);
          wake_io();
          return;
        }
        p = std::move(pending.front());
        pending.pop_front();
      }
      if (p.is_stats) {
        // Snapshot assembled here, on the completion thread, AFTER every
        // earlier pending response of this connection has been encoded —
        // a scrape therefore observes its own connection's prior frames
        // as served.
        obs::ScopedSpan span("wire.stats", "server", p.trace_id);
        ServerStatsView sv;
        sv.connections_accepted = self.accepted_.load();
        sv.connections_open = self.open_conns_.load();
        sv.frames_served = self.frames_served_.load();
        sv.frames_rejected = self.frames_rejected_.load();
        sv.stats_served = self.stats_served_.load();
        sv.backpressure_stalls = self.backpressure_stalls_.load();
        sv.force_closes = self.force_closes_.load();
        ConnectionStatsView cv;
        cv.id = p.conn->id;
        cv.frames = p.conn->frames.load();
        cv.rejected = p.conn->rejected.load();
        cv.backpressure_stalls = p.conn->stalls.load();
        cv.in_flight = p.conn->in_flight.load();
        const std::string json =
            stats_snapshot_json(self.engine_, &sv, &cv);
        {
          const std::lock_guard<std::mutex> lock(p.conn->tx_mu);
          wire::encode_stats_result(p.conn->tx, json);
        }
        p.conn->in_flight.fetch_sub(1);
        self.stats_served_.fetch_add(1, std::memory_order_relaxed);
        wake_io();
        continue;
      }
      std::vector<wire::ResultRecord> records;
      std::vector<std::vector<wire::NearestRecord>> near_lists;
      bool ok = true;
      obs::ScopedSpan span("wire.complete", "server", p.trace_id);
      try {
        const BatchResult res = p.future.get();
        if (p.is_nearest) {
          near_lists.reserve(res.results.size());
          for (const RequestResult& r : res.results) {
            std::vector<wire::NearestRecord> list;
            list.reserve(r.neighbors.size());
            for (const NearCandidate& c : r.neighbors) {
              wire::NearestRecord rec;
              rec.entry = c.entry;
              rec.priority = c.priority;
              rec.distance = static_cast<std::uint32_t>(c.distance);
              list.push_back(rec);
            }
            near_lists.push_back(std::move(list));
          }
        } else {
          records.reserve(res.results.size());
          for (const RequestResult& r : res.results) {
            wire::ResultRecord rec;
            rec.hit = r.hit ? 1 : 0;
            rec.entry = r.entry;
            rec.priority = r.priority;
            records.push_back(rec);
          }
        }
      } catch (const std::exception&) {
        ok = false;  // engine shut down under us: answer with an error
      }
      {
        const std::lock_guard<std::mutex> lock(p.conn->tx_mu);
        if (ok && p.is_nearest) {
          wire::encode_nearest_result(p.conn->tx, near_lists);
        } else if (ok) {
          wire::encode_search_result(p.conn->tx, records);
        } else {
          wire::ErrorFrame err;
          err.code = wire::ErrorCode::kShuttingDown;
          err.message = "engine shut down";
          wire::encode_error(p.conn->tx, err);
        }
      }
      p.conn->in_flight.fetch_sub(1);
      self.frames_served_.fetch_add(1, std::memory_order_relaxed);
      wake_io();
    }
  }
};

SearchServer::SearchServer(SearchEngine& engine, int cols,
                           ServerOptions options)
    : impl_(std::make_unique<Impl>(*this)),
      engine_(engine),
      cols_(cols),
      options_(std::move(options)) {
  if (cols_ <= 0) throw std::invalid_argument("server needs cols > 0");
  if (options_.max_pipeline == 0) options_.max_pipeline = 1;
}

SearchServer::~SearchServer() { stop(); }

void SearchServer::start() {
  if (running_.load()) return;
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::invalid_argument("bad server host: " + options_.host);
  }
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(impl_->listen_fd, options_.listen_backlog) != 0) {
    const int saved = errno;
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    errno = saved;
    throw_errno("bind/listen");
  }
  set_nonblocking(impl_->listen_fd);
  socklen_t len = sizeof(addr);
  ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_.store(ntohs(addr.sin_port));

  impl_->epoll_fd = ::epoll_create1(0);
  impl_->event_fd = ::eventfd(0, EFD_NONBLOCK);
  if (impl_->epoll_fd < 0 || impl_->event_fd < 0) throw_errno("epoll/eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = impl_->listen_fd;
  ::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listen_fd, &ev);
  ev.data.fd = impl_->event_fd;
  ::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->event_fd, &ev);

  impl_->stopping.store(false);
  impl_->drained.store(false);
  impl_->drain_deadline_set = false;
  {
    const std::lock_guard<std::mutex> lock(impl_->pending_mu);
    impl_->stop_requested = false;
    impl_->submissions_done = false;
  }
  impl_->io_thread = std::thread([this] { impl_->io_loop(); });
  impl_->completion_thread = std::thread([this] { impl_->completion_loop(); });
  running_.store(true);
}

void SearchServer::stop() {
  if (!running_.load()) return;
  impl_->stopping.store(true);
  {
    const std::lock_guard<std::mutex> lock(impl_->pending_mu);
    impl_->stop_requested = true;
  }
  impl_->pending_cv.notify_all();
  impl_->wake_io();
  if (impl_->completion_thread.joinable()) impl_->completion_thread.join();
  if (impl_->io_thread.joinable()) impl_->io_thread.join();
  if (impl_->event_fd >= 0) {
    ::close(impl_->event_fd);
    impl_->event_fd = -1;
  }
  if (impl_->epoll_fd >= 0) {
    ::close(impl_->epoll_fd);
    impl_->epoll_fd = -1;
  }
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  impl_->conns.clear();
  running_.store(false);
}

}  // namespace fetcam::engine
