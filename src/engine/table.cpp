#include "engine/table.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "engine/approx_kernel.hpp"

namespace fetcam::engine {

namespace {

// Even (cell1 / step-1) digit positions — digit c sits at bit (c & 63)
// and 64 is even, so global parity equals bit parity (packed_kernel.hpp).
constexpr std::uint64_t kEvenDigits = 0x5555555555555555ULL;

arch::WriteVoltages table_write_voltages(arch::TcamDesign design) {
  switch (design) {
    case arch::TcamDesign::k2SgFefet:
    case arch::TcamDesign::k1p5SgFe:
      return {.vw = 4.0, .vm = 3.39, .vdd = 0.8};
    case arch::TcamDesign::k2DgFefet:
    case arch::TcamDesign::k1p5DgFe:
      return {.vw = 2.0, .vm = 1.66, .vdd = 0.8};
    case arch::TcamDesign::kCmos16T:
      return {.vw = 0.9, .vm = 0.0, .vdd = 0.8};
  }
  return {};
}

}  // namespace

TcamTable::TcamTable(const TableConfig& config)
    : config_(config),
      two_step_(arch::default_op_costs(config.design).two_step),
      write_voltages_(table_write_voltages(config.design)) {
  if (config.mats <= 0 || config.rows_per_mat <= 0 || config.cols <= 0) {
    throw std::invalid_argument("table needs mats, rows_per_mat, cols > 0");
  }
  if (two_step_ && config.cols % 2 != 0) {
    throw std::invalid_argument(
        "two-step design needs an even word length (table is " +
        std::to_string(config.rows_per_mat) + " rows x " +
        std::to_string(config.cols) + " cols per mat)");
  }
  if (config.subarrays_per_mat <= 0 || config.subarrays_per_mat % 2 != 0 ||
      config.rows_per_mat % config.subarrays_per_mat != 0) {
    throw std::invalid_argument(
        "subarrays_per_mat must be even and divide rows_per_mat");
  }
  if (config.digit_bits < 1 || config.digit_bits > 3) {
    throw std::invalid_argument("TableConfig::digit_bits must be in [1, 3]");
  }
  if (config.cols % config.digit_bits != 0) {
    throw std::invalid_argument(
        "TableConfig::digit_bits must divide cols (table is " +
        std::to_string(config.cols) + " cols, digit_bits " +
        std::to_string(config.digit_bits) + ")");
  }
  shards_.reserve(static_cast<std::size_t>(config.mats));
  energy_.reserve(static_cast<std::size_t>(config.mats));
  endurance_.reserve(static_cast<std::size_t>(config.mats));
  free_rows_.resize(static_cast<std::size_t>(config.mats));
  row_entry_.resize(static_cast<std::size_t>(config.mats));
  for (int m = 0; m < config.mats; ++m) {
    shards_.emplace_back(config.rows_per_mat, config.cols);
    energy_.emplace_back(config.design, config.rows_per_mat, config.cols);
    endurance_.emplace_back(config.design, config.rows_per_mat);
    auto& heap = free_rows_[static_cast<std::size_t>(m)];
    heap.reserve(static_cast<std::size_t>(config.rows_per_mat));
    // std::greater heap pops the smallest row first.
    for (int r = config.rows_per_mat - 1; r >= 0; --r) heap.push_back(r);
    std::make_heap(heap.begin(), heap.end(), std::greater<>());
    row_entry_[static_cast<std::size_t>(m)].assign(
        static_cast<std::size_t>(config.rows_per_mat), kInvalidEntry);
  }
  aggregates_.resize(static_cast<std::size_t>(config.mats));
  const std::size_t agg_words =
      (static_cast<std::size_t>(config.cols) + 63) / 64;
  for (MatAggregate& ag : aggregates_) {
    ag.require_one.assign(agg_words, 0);
    ag.require_zero.assign(agg_words, 0);
    ag.one_count.assign(static_cast<std::size_t>(config.cols), 0);
    ag.zero_count.assign(static_cast<std::size_t>(config.cols), 0);
  }
}

std::size_t TcamTable::capacity() const {
  return static_cast<std::size_t>(config_.mats) *
         static_cast<std::size_t>(config_.rows_per_mat);
}

std::size_t TcamTable::checked_mat(int mat) const {
  if (mat < 0 || mat >= config_.mats) {
    throw std::out_of_range("mat out of range");
  }
  return static_cast<std::size_t>(mat);
}

void TcamTable::check_entry(EntryId id) const {
  if (id < 0 || id >= static_cast<EntryId>(slots_.size()) ||
      !slots_[static_cast<std::size_t>(id)].live) {
    throw std::out_of_range("unknown entry id");
  }
}

void TcamTable::write_slot(const Slot& slot, const arch::TernaryWord& entry) {
  auto& shard = shards_[static_cast<std::size_t>(slot.mat)];
  const bool was_valid = shard.valid(slot.row);
  const arch::TernaryWord previous =
      was_valid ? shard.entry(slot.row) : arch::TernaryWord{};
  if (was_valid) aggregate_remove(slot.mat, previous);
  aggregate_add(slot.mat, entry);
  const arch::WritePlan plan =
      two_step_ ? arch::three_step_plan(entry, previous, write_voltages_)
                : arch::complementary_plan(entry, write_voltages_);
  last_write_phases_ = static_cast<int>(plan.phases.size());
  write_pulses_ += last_write_phases_;
  // 2FeFET designs switch every cell regardless of data; the 1.5T1Fe plans
  // charge only switching cells (same policy as TcamController::update).
  const int cells =
      two_step_ ? plan.total_switching_cells() : config_.cols;
  energy_[static_cast<std::size_t>(slot.mat)].on_write(cells);
  endurance_[static_cast<std::size_t>(slot.mat)].on_write(slot.row);
  shard.write(slot.row, entry);
}

EntryId TcamTable::insert(const arch::TernaryWord& entry, int priority) {
  return insert(entry, priority, -1);
}

EntryId TcamTable::insert(const arch::TernaryWord& entry, int priority,
                          int mat) {
  int best = -1;
  if (mat >= 0) {
    // Placer-directed: this mat or nothing (capacity drift must surface).
    checked_mat(mat);
    if (!free_rows_[static_cast<std::size_t>(mat)].empty()) best = mat;
  } else {
    // Emptiest mat, lowest index on ties — deterministic spread.
    std::size_t best_free = 0;
    for (int m = 0; m < config_.mats; ++m) {
      const std::size_t free = free_rows_[static_cast<std::size_t>(m)].size();
      if (free > best_free) {
        best = m;
        best_free = free;
      }
    }
  }
  if (best < 0) return kInvalidEntry;
  auto& heap = free_rows_[static_cast<std::size_t>(best)];
  std::pop_heap(heap.begin(), heap.end(), std::greater<>());
  const int row = heap.back();
  heap.pop_back();

  const EntryId id = static_cast<EntryId>(slots_.size());
  Slot slot;
  slot.mat = best;
  slot.row = row;
  slot.priority = priority;
  slot.live = true;
  write_slot(slot, entry);
  slots_.push_back(slot);
  row_entry_[static_cast<std::size_t>(best)][static_cast<std::size_t>(row)] =
      id;
  ++live_;
  return id;
}

void TcamTable::update(EntryId id, const arch::TernaryWord& entry) {
  check_entry(id);
  write_slot(slots_[static_cast<std::size_t>(id)], entry);
}

void TcamTable::update(EntryId id, const arch::TernaryWord& entry,
                       int priority) {
  check_entry(id);
  slots_[static_cast<std::size_t>(id)].priority = priority;
  write_slot(slots_[static_cast<std::size_t>(id)], entry);
}

void TcamTable::rewrite_digits(EntryId id, const arch::TernaryWord& entry) {
  check_entry(id);
  const Slot& slot = slots_[static_cast<std::size_t>(id)];
  auto& shard = shards_[static_cast<std::size_t>(slot.mat)];
  const arch::TernaryWord previous = shard.entry(slot.row);
  int changed = 0;
  for (std::size_t c = 0; c < entry.size(); ++c) {
    if (entry[c] != previous[c]) ++changed;
  }
  const arch::WritePlan plan =
      two_step_
          ? arch::incremental_three_step_plan(entry, previous, write_voltages_)
          : arch::incremental_complementary_plan(entry, previous,
                                                 write_voltages_);
  last_write_phases_ = static_cast<int>(plan.phases.size());
  write_pulses_ += last_write_phases_;
  if (changed > 0) {
    // Energy: the two-step designs pay the cells that switch polarization;
    // the complementary designs pay the (per-cell-pair) cost of every
    // driven column — here only the changed ones.
    const int cells = two_step_ ? plan.total_switching_cells() : changed;
    energy_[static_cast<std::size_t>(slot.mat)].on_write(cells);
    endurance_[static_cast<std::size_t>(slot.mat)].on_write(slot.row);
    aggregate_remove(slot.mat, previous);
    aggregate_add(slot.mat, entry);
    shard.write(slot.row, entry);
  }
}

void TcamTable::set_priority(EntryId id, int priority) {
  check_entry(id);
  slots_[static_cast<std::size_t>(id)].priority = priority;
}

bool TcamTable::relocate(EntryId id, int target_mat) {
  check_entry(id);
  checked_mat(target_mat);
  auto& heap = free_rows_[static_cast<std::size_t>(target_mat)];
  if (heap.empty()) return false;
  Slot& slot = slots_[static_cast<std::size_t>(id)];
  const int old_mat = slot.mat;
  const int old_row = slot.row;
  const arch::TernaryWord word =
      shards_[static_cast<std::size_t>(old_mat)].entry(old_row);

  std::pop_heap(heap.begin(), heap.end(), std::greater<>());
  const int row = heap.back();
  heap.pop_back();
  slot.mat = target_mat;
  slot.row = row;
  // One write at the destination (erased previous), endurance charged
  // there; vacating the source is peripheral-only, exactly like erase().
  write_slot(slot, word);
  row_entry_[static_cast<std::size_t>(target_mat)]
            [static_cast<std::size_t>(row)] = id;
  aggregate_remove(old_mat, word);
  shards_[static_cast<std::size_t>(old_mat)].erase(old_row);
  row_entry_[static_cast<std::size_t>(old_mat)]
            [static_cast<std::size_t>(old_row)] = kInvalidEntry;
  auto& old_heap = free_rows_[static_cast<std::size_t>(old_mat)];
  old_heap.push_back(old_row);
  std::push_heap(old_heap.begin(), old_heap.end(), std::greater<>());
  return true;
}

void TcamTable::erase(EntryId id) {
  check_entry(id);
  Slot& slot = slots_[static_cast<std::size_t>(id)];
  aggregate_remove(slot.mat,
                   shards_[static_cast<std::size_t>(slot.mat)].entry(slot.row));
  shards_[static_cast<std::size_t>(slot.mat)].erase(slot.row);
  row_entry_[static_cast<std::size_t>(slot.mat)]
            [static_cast<std::size_t>(slot.row)] = kInvalidEntry;
  auto& heap = free_rows_[static_cast<std::size_t>(slot.mat)];
  heap.push_back(slot.row);
  std::push_heap(heap.begin(), heap.end(), std::greater<>());
  slot.live = false;
  --live_;
}

bool TcamTable::contains(EntryId id) const {
  return id >= 0 && id < static_cast<EntryId>(slots_.size()) &&
         slots_[static_cast<std::size_t>(id)].live;
}

std::optional<EntryLocation> TcamTable::locate(EntryId id) const {
  if (!contains(id)) return std::nullopt;
  const Slot& slot = slots_[static_cast<std::size_t>(id)];
  EntryLocation loc;
  loc.mat = slot.mat;
  loc.row = slot.row;
  loc.subarray =
      slot.row / (config_.rows_per_mat / config_.subarrays_per_mat);
  return loc;
}

int TcamTable::priority_of(EntryId id) const {
  check_entry(id);
  return slots_[static_cast<std::size_t>(id)].priority;
}

arch::TernaryWord TcamTable::entry_word(EntryId id) const {
  check_entry(id);
  const Slot& slot = slots_[static_cast<std::size_t>(id)];
  return shards_[static_cast<std::size_t>(slot.mat)].entry(slot.row);
}

std::size_t TcamTable::free_rows(int mat) const {
  return free_rows_[checked_mat(mat)].size();
}

WriteCost TcamTable::cost_write(const arch::TernaryWord& next,
                                const arch::TernaryWord* previous) const {
  const arch::TernaryWord empty;
  const arch::WritePlan plan =
      two_step_
          ? arch::three_step_plan(next, previous != nullptr ? *previous : empty,
                                  write_voltages_)
          : arch::complementary_plan(next, write_voltages_);
  WriteCost cost;
  cost.phases = static_cast<int>(plan.phases.size());
  // Same charging policy as write_slot: the 1.5T1Fe plans pay switching
  // cells only, the 2FeFET designs pay every cell.
  cost.cells = two_step_ ? plan.total_switching_cells() : config_.cols;
  cost.energy_j = energy_[0].projected_write_energy_j(cost.cells);
  return cost;
}

WriteCost TcamTable::cost_rewrite(const arch::TernaryWord& next,
                                  const arch::TernaryWord& previous) const {
  const arch::WritePlan plan =
      two_step_
          ? arch::incremental_three_step_plan(next, previous, write_voltages_)
          : arch::incremental_complementary_plan(next, previous,
                                                 write_voltages_);
  int changed = 0;
  for (std::size_t c = 0; c < next.size(); ++c) {
    if (next[c] != previous[c]) ++changed;
  }
  WriteCost cost;
  cost.phases = static_cast<int>(plan.phases.size());
  cost.cells = two_step_ ? plan.total_switching_cells() : changed;
  cost.energy_j = energy_[0].projected_write_energy_j(cost.cells);
  return cost;
}

void TcamTable::aggregate_add(int mat, const arch::TernaryWord& word) {
  MatAggregate& ag = aggregates_[static_cast<std::size_t>(mat)];
  for (std::size_t c = 0; c < word.size(); ++c) {
    if (word[c] == arch::Ternary::kOne) {
      ++ag.one_count[c];
    } else if (word[c] == arch::Ternary::kZero) {
      ++ag.zero_count[c];
    }
  }
  ++ag.valid_rows;
  rebuild_aggregate_masks(ag);
}

void TcamTable::aggregate_remove(int mat, const arch::TernaryWord& word) {
  MatAggregate& ag = aggregates_[static_cast<std::size_t>(mat)];
  for (std::size_t c = 0; c < word.size(); ++c) {
    if (word[c] == arch::Ternary::kOne) {
      --ag.one_count[c];
    } else if (word[c] == arch::Ternary::kZero) {
      --ag.zero_count[c];
    }
  }
  --ag.valid_rows;
  rebuild_aggregate_masks(ag);
}

void TcamTable::rebuild_aggregate_masks(MatAggregate& ag) const {
  std::fill(ag.require_one.begin(), ag.require_one.end(), 0);
  std::fill(ag.require_zero.begin(), ag.require_zero.end(), 0);
  if (ag.valid_rows <= 0) return;  // empty mats skip via valid_rows
  for (int c = 0; c < config_.cols; ++c) {
    const std::uint64_t bit = 1ULL << (c & 63);
    if (ag.one_count[static_cast<std::size_t>(c)] == ag.valid_rows) {
      ag.require_one[static_cast<std::size_t>(c) >> 6] |= bit;
    } else if (ag.zero_count[static_cast<std::size_t>(c)] == ag.valid_rows) {
      ag.require_zero[static_cast<std::size_t>(c) >> 6] |= bit;
    }
  }
}

MatAggregate TcamTable::scan_aggregate(int mat) const {
  const std::size_t m = checked_mat(mat);
  const PackedShard& shard = shards_[m];
  MatAggregate ag;
  ag.require_one.assign(
      (static_cast<std::size_t>(config_.cols) + 63) / 64, 0);
  ag.require_zero.assign(ag.require_one.size(), 0);
  ag.one_count.assign(static_cast<std::size_t>(config_.cols), 0);
  ag.zero_count.assign(static_cast<std::size_t>(config_.cols), 0);
  for (int r = 0; r < config_.rows_per_mat; ++r) {
    if (!shard.valid(r)) continue;
    const arch::TernaryWord word = shard.entry(r);
    for (std::size_t c = 0; c < word.size(); ++c) {
      if (word[c] == arch::Ternary::kOne) {
        ++ag.one_count[c];
      } else if (word[c] == arch::Ternary::kZero) {
        ++ag.zero_count[c];
      }
    }
    ++ag.valid_rows;
  }
  rebuild_aggregate_masks(ag);
  return ag;
}

int TcamTable::aggregate_overlap(int mat, const arch::TernaryWord& word) const {
  const MatAggregate& ag = aggregates_[checked_mat(mat)];
  if (ag.valid_rows == 0) {
    // An empty mat's aggregate becomes exactly the word's cared digits.
    int cared = 0;
    for (const arch::Ternary t : word) {
      if (t != arch::Ternary::kX) ++cared;
    }
    return cared;
  }
  int overlap = 0;
  for (std::size_t c = 0; c < word.size(); ++c) {
    const std::uint64_t bit = 1ULL << (c & 63);
    const std::size_t w = c >> 6;
    if ((ag.require_one[w] & bit) != 0 && word[c] == arch::Ternary::kOne) {
      ++overlap;
    } else if ((ag.require_zero[w] & bit) != 0 &&
               word[c] == arch::Ternary::kZero) {
      ++overlap;
    }
  }
  return overlap;
}

bool TcamTable::mat_skips(std::size_t mat, const PackedQuery& query) const {
  const MatAggregate& ag = aggregates_[mat];
  if (ag.valid_rows == 0) return true;  // nothing stored: trivially matchless
  std::uint64_t miss = 0;
  for (std::size_t w = 0; w < ag.require_one.size(); ++w) {
    miss |= (ag.require_one[w] & ~query.bits[w]) |
            (ag.require_zero[w] & query.bits[w]);
  }
  // Two-step designs only accept proofs on even (cell1) columns: a step-1
  // wipeout has exactly-known stats (every row is a step-1 miss), while an
  // odd-column proof would leave step1/step2 accounting unknowable without
  // the scan the skip exists to avoid.
  if (two_step_) miss &= kEvenDigits;
  return miss != 0;
}

arch::SearchStats TcamTable::skipped_stats() const {
  arch::SearchStats s;
  s.rows = config_.rows_per_mat;
  if (two_step_) {
    s.step1_misses = config_.rows_per_mat;  // every row dies in step 1
  } else {
    s.step2_evaluated = config_.rows_per_mat;  // single-step accounting
  }
  return s;
}

void TcamTable::scan_hits(std::size_t mat, const std::uint64_t* mask,
                          std::size_t words, TableMatch& out) const {
  const auto& rows = row_entry_[mat];
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      const int r = static_cast<int>(w * 64) + std::countr_zero(bits);
      bits &= bits - 1;
      const EntryId id = rows[static_cast<std::size_t>(r)];
      const int prio = slots_[static_cast<std::size_t>(id)].priority;
      if (!out.hit || prio < out.priority ||
          (prio == out.priority && id < out.entry)) {
        out.hit = true;
        out.entry = id;
        out.priority = prio;
      }
    }
  }
}

void merge_match(TableMatch& into, const TableMatch& part) {
  into.stats.rows += part.stats.rows;
  into.stats.step1_misses += part.stats.step1_misses;
  into.stats.step2_evaluated += part.stats.step2_evaluated;
  into.stats.matches += part.stats.matches;
  if (into.per_mat.size() < part.per_mat.size()) {
    into.per_mat.resize(part.per_mat.size());
  }
  for (std::size_t m = 0; m < part.per_mat.size(); ++m) {
    into.per_mat[m].rows += part.per_mat[m].rows;
    into.per_mat[m].step1_misses += part.per_mat[m].step1_misses;
    into.per_mat[m].step2_evaluated += part.per_mat[m].step2_evaluated;
    into.per_mat[m].matches += part.per_mat[m].matches;
  }
  if (part.hit &&
      (!into.hit || part.priority < into.priority ||
       (part.priority == into.priority && part.entry < into.entry))) {
    into.hit = true;
    into.entry = part.entry;
    into.priority = part.priority;
  }
}

void TcamTable::match(const arch::BitWord& query, MatchScratch& scratch,
                      TableMatch& out) const {
  match_mats(query, 0, config_.mats, scratch, out);
}

void TcamTable::match_mats(const arch::BitWord& query, int mat_begin,
                           int mat_end, MatchScratch& scratch,
                           TableMatch& out) const {
  scratch.query.repack(query);
  match_mats(scratch.query, mat_begin, mat_end, scratch, out);
}

void TcamTable::match_mats(const PackedQuery& query, int mat_begin,
                           int mat_end, MatchScratch& scratch,
                           TableMatch& out) const {
  if (mat_begin < 0 || mat_end > config_.mats || mat_begin > mat_end) {
    throw std::out_of_range("mat range out of range");
  }
  out.hit = false;
  out.entry = kInvalidEntry;
  out.priority = 0;
  out.stats = arch::SearchStats{};
  out.per_mat.assign(static_cast<std::size_t>(config_.mats),
                     arch::SearchStats{});

  long long skipped = 0;
  for (int m = mat_begin; m < mat_end; ++m) {
    if (config_.mat_skip && mat_skips(static_cast<std::size_t>(m), query)) {
      const arch::SearchStats s = skipped_stats();
      out.per_mat[static_cast<std::size_t>(m)] = s;
      out.stats.rows += s.rows;
      out.stats.step1_misses += s.step1_misses;
      out.stats.step2_evaluated += s.step2_evaluated;
      ++skipped;
      continue;
    }
    const auto& shard = shards_[static_cast<std::size_t>(m)];
    const arch::SearchStats s =
        two_step_ ? shard.two_step_match(query, scratch.mask)
                  : shard.full_match(query, scratch.mask);
    out.per_mat[static_cast<std::size_t>(m)] = s;
    out.stats.rows += s.rows;
    out.stats.step1_misses += s.step1_misses;
    out.stats.step2_evaluated += s.step2_evaluated;
    out.stats.matches += s.matches;
    // Priority scan over this shard's hits: lowest (priority, id) wins.
    scan_hits(static_cast<std::size_t>(m), scratch.mask.data(),
              scratch.mask.size(), out);
  }
  mats_considered_.fetch_add(mat_end - mat_begin, std::memory_order_relaxed);
  if (skipped != 0) {
    mats_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  }
}

void TcamTable::match_mats_block(const arch::BitWord* const* queries, int nq,
                                 int mat_begin, int mat_end,
                                 BlockMatchScratch& scratch,
                                 TableMatch* const* outs) const {
  if (nq < 1 || nq > kMaxQueryBlock) {
    throw std::invalid_argument("query block size must be in [1, " +
                                std::to_string(kMaxQueryBlock) + "], got " +
                                std::to_string(nq));
  }
  if (scratch.queries.size() < static_cast<std::size_t>(nq)) {
    scratch.queries.resize(static_cast<std::size_t>(nq));
  }
  const PackedQuery* packed[kMaxQueryBlock];
  for (int q = 0; q < nq; ++q) {
    scratch.queries[static_cast<std::size_t>(q)].repack(*queries[q]);
    packed[q] = &scratch.queries[static_cast<std::size_t>(q)];
  }
  match_mats_block(packed, nq, mat_begin, mat_end, scratch, outs);
}

void TcamTable::match_mats_block(const PackedQuery* const* queries, int nq,
                                 int mat_begin, int mat_end,
                                 BlockMatchScratch& scratch,
                                 TableMatch* const* outs) const {
  if (mat_begin < 0 || mat_end > config_.mats || mat_begin > mat_end) {
    throw std::out_of_range("mat range out of range");
  }
  if (nq < 1 || nq > kMaxQueryBlock) {
    throw std::invalid_argument("query block size must be in [1, " +
                                std::to_string(kMaxQueryBlock) + "], got " +
                                std::to_string(nq));
  }
  if (scratch.masks.size() < static_cast<std::size_t>(nq)) {
    scratch.masks.resize(static_cast<std::size_t>(nq));
  }
  const std::size_t mask_words = shards_[0].mask_words();
  for (int q = 0; q < nq; ++q) {
    scratch.masks[static_cast<std::size_t>(q)].resize(mask_words);
    TableMatch& out = *outs[q];
    out.hit = false;
    out.entry = kInvalidEntry;
    out.priority = 0;
    out.stats = arch::SearchStats{};
    out.per_mat.assign(static_cast<std::size_t>(config_.mats),
                       arch::SearchStats{});
  }

  // Per mat: prune per lane, then one blocked kernel pass over the
  // surviving lanes.  Lane results are independent of the sub-block's
  // composition, so a lane sees identical masks and stats whether its
  // neighbors were pruned or not.
  const PackedQuery* kernel_queries[kMaxQueryBlock];
  std::uint64_t* kernel_masks[kMaxQueryBlock];
  arch::SearchStats kernel_stats[kMaxQueryBlock];
  int lane_of[kMaxQueryBlock];
  long long skipped = 0;
  for (int m = mat_begin; m < mat_end; ++m) {
    int live = 0;
    for (int q = 0; q < nq; ++q) {
      if (config_.mat_skip &&
          mat_skips(static_cast<std::size_t>(m), *queries[q])) {
        const arch::SearchStats s = skipped_stats();
        TableMatch& out = *outs[q];
        out.per_mat[static_cast<std::size_t>(m)] = s;
        out.stats.rows += s.rows;
        out.stats.step1_misses += s.step1_misses;
        out.stats.step2_evaluated += s.step2_evaluated;
        ++skipped;
        continue;
      }
      kernel_queries[live] = queries[q];
      kernel_masks[live] =
          scratch.masks[static_cast<std::size_t>(q)].data();
      lane_of[live] = q;
      ++live;
    }
    if (live == 0) continue;
    const auto& shard = shards_[static_cast<std::size_t>(m)];
    if (two_step_) {
      shard.two_step_match_block(kernel_queries, live, kernel_masks,
                                 kernel_stats);
    } else {
      shard.full_match_block(kernel_queries, live, kernel_masks,
                             kernel_stats);
    }
    for (int j = 0; j < live; ++j) {
      TableMatch& out = *outs[lane_of[j]];
      const arch::SearchStats& s = kernel_stats[j];
      out.per_mat[static_cast<std::size_t>(m)] = s;
      out.stats.rows += s.rows;
      out.stats.step1_misses += s.step1_misses;
      out.stats.step2_evaluated += s.step2_evaluated;
      out.stats.matches += s.matches;
      scan_hits(static_cast<std::size_t>(m), kernel_masks[j], mask_words,
                out);
    }
  }
  mats_considered_.fetch_add(
      static_cast<long long>(mat_end - mat_begin) * nq,
      std::memory_order_relaxed);
  if (skipped != 0) {
    mats_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  }
}

void merge_nearest(NearestMatch& into, const NearestMatch& part, int k) {
  into.stats.rows += part.stats.rows;
  into.stats.step1_misses += part.stats.step1_misses;
  into.stats.step2_evaluated += part.stats.step2_evaluated;
  into.stats.matches += part.stats.matches;
  if (into.per_mat.size() < part.per_mat.size()) {
    into.per_mat.resize(part.per_mat.size());
  }
  for (std::size_t m = 0; m < part.per_mat.size(); ++m) {
    into.per_mat[m].rows += part.per_mat[m].rows;
    into.per_mat[m].step1_misses += part.per_mat[m].step1_misses;
    into.per_mat[m].step2_evaluated += part.per_mat[m].step2_evaluated;
    into.per_mat[m].matches += part.per_mat[m].matches;
  }
  if (part.top.empty()) return;
  std::vector<NearCandidate> merged;
  merged.reserve(
      std::min(into.top.size() + part.top.size(),
               static_cast<std::size_t>(k)));
  std::size_t i = 0;
  std::size_t j = 0;
  while (merged.size() < static_cast<std::size_t>(k) &&
         (i < into.top.size() || j < part.top.size())) {
    if (j >= part.top.size() ||
        (i < into.top.size() &&
         near_candidate_less(into.top[i], part.top[j]))) {
      merged.push_back(into.top[i++]);
    } else {
      merged.push_back(part.top[j++]);
    }
  }
  into.top = std::move(merged);
}

bool TcamTable::nearest_mat_skips(std::size_t mat, const PackedQuery& query,
                                  int threshold) const {
  const MatAggregate& ag = aggregates_[mat];
  if (ag.valid_rows == 0) return true;  // nothing stored: trivially empty
  // Guaranteed-miss columns (every valid row mismatches there), collapsed
  // onto digit groups: the popcount lower-bounds every row's distance, so
  // exceeding the threshold proves the whole mat is beyond it.  No
  // even-column restriction here — approximate accounting is single-step,
  // so a skip never has to reconstruct step-1/step-2 splits.
  int bound = 0;
  const std::size_t words = ag.require_one.size();
  std::uint64_t next =
      (ag.require_one[0] & ~query.bits[0]) |
      (ag.require_zero[0] & query.bits[0]);
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t miss = next;
    next = w + 1 < words
               ? (ag.require_one[w + 1] & ~query.bits[w + 1]) |
                     (ag.require_zero[w + 1] & query.bits[w + 1])
               : 0;
    bound += std::popcount(detail::collapse_digits(
        miss, next, static_cast<int>(w), config_.digit_bits));
    if (bound > threshold) return true;
  }
  return false;
}

void TcamTable::nearest_mats(const arch::BitWord& query, int k, int threshold,
                             int mat_begin, int mat_end,
                             NearestScratch& scratch,
                             NearestMatch& out) const {
  scratch.query.repack(query);
  nearest_mats(scratch.query, k, threshold, mat_begin, mat_end, scratch, out);
}

void TcamTable::nearest_mats(const PackedQuery& query, int k, int threshold,
                             int mat_begin, int mat_end,
                             NearestScratch& scratch,
                             NearestMatch& out) const {
  if (mat_begin < 0 || mat_end > config_.mats || mat_begin > mat_end) {
    throw std::out_of_range("mat range out of range");
  }
  if (k < 1) {
    throw std::invalid_argument("k must be >= 1, got " + std::to_string(k));
  }
  if (threshold < 0) {
    throw std::invalid_argument("distance_threshold must be >= 0, got " +
                                std::to_string(threshold));
  }
  out.top.clear();
  out.stats = arch::SearchStats{};
  out.per_mat.assign(static_cast<std::size_t>(config_.mats),
                     arch::SearchStats{});

  long long skipped = 0;
  for (int m = mat_begin; m < mat_end; ++m) {
    if (config_.mat_skip &&
        nearest_mat_skips(static_cast<std::size_t>(m), query, threshold)) {
      // Accounting identical to the kernel scan this skip replaces
      // (single-step: every row fires, nothing is within the threshold),
      // so the knob changes cost only.
      arch::SearchStats s;
      s.rows = config_.rows_per_mat;
      s.step2_evaluated = config_.rows_per_mat;
      out.per_mat[static_cast<std::size_t>(m)] = s;
      out.stats.rows += s.rows;
      out.stats.step2_evaluated += s.step2_evaluated;
      ++skipped;
      continue;
    }
    const auto& shard = shards_[static_cast<std::size_t>(m)];
    const arch::SearchStats s =
        approx_match(shard, query, config_.digit_bits, threshold,
                     scratch.within, scratch.distances);
    out.per_mat[static_cast<std::size_t>(m)] = s;
    out.stats.rows += s.rows;
    out.stats.step1_misses += s.step1_misses;
    out.stats.step2_evaluated += s.step2_evaluated;
    out.stats.matches += s.matches;
    // Candidate scan: bounded insertion keeps out.top sorted by
    // (distance, priority, id), at most k entries.
    const auto& rows = row_entry_[static_cast<std::size_t>(m)];
    for (std::size_t w = 0; w < scratch.within.size(); ++w) {
      std::uint64_t bits = scratch.within[w];
      while (bits != 0) {
        const int r = static_cast<int>(w * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        NearCandidate cand;
        cand.entry = rows[static_cast<std::size_t>(r)];
        cand.priority =
            slots_[static_cast<std::size_t>(cand.entry)].priority;
        cand.distance =
            static_cast<int>(scratch.distances[static_cast<std::size_t>(r)]);
        if (out.top.size() == static_cast<std::size_t>(k) &&
            !near_candidate_less(cand, out.top.back())) {
          continue;
        }
        const auto at = std::upper_bound(
            out.top.begin(), out.top.end(), cand,
            [](const NearCandidate& a, const NearCandidate& b) {
              return near_candidate_less(a, b);
            });
        out.top.insert(at, cand);
        if (out.top.size() > static_cast<std::size_t>(k)) out.top.pop_back();
      }
    }
  }
  mats_considered_.fetch_add(mat_end - mat_begin, std::memory_order_relaxed);
  if (skipped != 0) {
    mats_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  }
}

NearestMatch TcamTable::search_nearest(const arch::BitWord& query, int k,
                                       int threshold) {
  NearestScratch scratch;
  NearestMatch out;
  nearest_mats(query, k, threshold, 0, config_.mats, scratch, out);
  account_nearest(out);
  return out;
}

void TcamTable::account_nearest(const NearestMatch& m) {
  for (int mat = 0; mat < config_.mats; ++mat) {
    energy_[static_cast<std::size_t>(mat)].on_search(
        m.per_mat[static_cast<std::size_t>(mat)]);
  }
  stats_.add(m.stats);
}

TableMatch TcamTable::search(const arch::BitWord& query) {
  MatchScratch scratch;
  TableMatch out;
  match(query, scratch, out);
  account_search(out);
  return out;
}

void TcamTable::account_search(const TableMatch& m) {
  for (int mat = 0; mat < config_.mats; ++mat) {
    energy_[static_cast<std::size_t>(mat)].on_search(
        m.per_mat[static_cast<std::size_t>(mat)]);
  }
  stats_.add(m.stats);
}

double TcamTable::total_energy_j() const {
  double e = 0.0;
  for (const auto& model : energy_) e += model.total_energy_j();
  return e;
}

}  // namespace fetcam::engine
