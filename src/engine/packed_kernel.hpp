// Bit-packed TCAM shard kernel: the service-engine representation of one
// mat's worth of entries.
//
// The behavioral TcamArray stores one byte per ternary digit and matches
// digit-by-digit — exact, but a serving layer scanning thousands of rows
// per query cannot afford 1 byte/digit.  A PackedShard stores each row as
// (care, value) uint64 mask pairs, 64 ternary digits per word pair:
//
//   care bit  = 1  digit is '0' or '1' (participates in matching)
//   care bit  = 0  digit is 'X' (don't-care)
//   value bit = 1  digit is '1' (kept 0 wherever care = 0, canonical form)
//
// A 64-digit block of a query mismatches iff  care & (value ^ query) != 0,
// so a whole row of N digits is matched in ceil(N/64) word operations.
//
// Digit c lives at bit (c & 63) of word (c >> 6), LSB-first.  Because 64 is
// even, a digit's global parity equals its bit parity, so the paper's
// two-step schedule (step 1 = even/cell1 digits, step 2 = odd/cell2 digits,
// Sec. III-B3) is the same mismatch test under constant parity masks.  The
// two-step kernel reproduces arch::two_step_search semantics AND its
// SearchStats bit-exactly: invalid rows and step-1 mismatches terminate
// early (step1_misses), only survivors evaluate the odd digits
// (step2_evaluated), and matches are flagged per row.
//
// Match results are reported as a row bitmask (64 rows per word) so the
// sharded table can priority-scan hits with countr_zero instead of walking
// a std::vector<bool>.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/behavioral_array.hpp"
#include "arch/search_scheduler.hpp"

namespace fetcam::engine {

/// A query packed to the shard's digit layout: bit (c & 63) of word
/// (c >> 6) is query digit c; bits at and above `cols` are zero.
struct PackedQuery {
  int cols = 0;
  std::vector<std::uint64_t> bits;

  static PackedQuery pack(const arch::BitWord& query);
};

class PackedShard {
 public:
  /// rows entries of `cols` ternary digits, all-'X' and invalid (erased).
  /// rows >= 0, cols > 0.
  PackedShard(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int words_per_row() const { return words_per_row_; }

  /// Store an entry (marks the row valid).
  void write(int row, const arch::TernaryWord& entry);
  /// Invalidate a row (content is retained, like TcamArray::erase).
  void erase(int row);
  bool valid(int row) const;
  /// Reconstruct the stored word from the packed masks (exact: the packing
  /// is lossless per digit).
  arch::TernaryWord entry(int row) const;

  /// Single-step full match (TcamArray::search semantics: invalid rows
  /// never match).  Sets bit (r & 63) of match_mask[r >> 6] per matching
  /// row; stats are shaped like TcamController's single-step accounting
  /// (every row evaluates fully: step2_evaluated = rows, no step-1 misses).
  arch::SearchStats full_match(const PackedQuery& query,
                               std::vector<std::uint64_t>& match_mask) const;

  /// Two-step early-terminating match, bit-exact vs arch::two_step_search
  /// (match flags and SearchStats).  Requires an even word length.
  arch::SearchStats two_step_match(const PackedQuery& query,
                                   std::vector<std::uint64_t>& match_mask) const;

  /// Convenience wrappers mirroring the behavioral API (used by the
  /// golden-equivalence tests).
  std::vector<bool> search(const arch::BitWord& query) const;
  arch::ScheduledSearchResult two_step_search(const arch::BitWord& query) const;

  /// Words in a row bitmask covering all rows.
  std::size_t mask_words() const {
    return (static_cast<std::size_t>(rows_) + 63) / 64;
  }

 private:
  void check_row(int row) const;
  void check_query(const PackedQuery& query) const;

  int rows_;
  int cols_;
  int words_per_row_;
  std::vector<std::uint64_t> care_;   ///< rows x words_per_row
  std::vector<std::uint64_t> value_;  ///< rows x words_per_row
  std::vector<std::uint64_t> valid_;  ///< row bitmask, 64 rows/word
};

}  // namespace fetcam::engine
