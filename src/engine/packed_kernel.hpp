// Bit-packed TCAM shard kernel: the service-engine representation of one
// mat's worth of entries.
//
// The behavioral TcamArray stores one byte per ternary digit and matches
// digit-by-digit — exact, but a serving layer scanning thousands of rows
// per query cannot afford 1 byte/digit.  A PackedShard stores each row as
// (care, value) uint64 mask pairs, 64 ternary digits per word pair:
//
//   care bit  = 1  digit is '0' or '1' (participates in matching)
//   care bit  = 0  digit is 'X' (don't-care)
//   value bit = 1  digit is '1' (kept 0 wherever care = 0, canonical form)
//
// A 64-digit block of a query mismatches iff  care & (value ^ query) != 0,
// so a whole row of N digits is matched in ceil(N/64) word operations.
//
// Digit c lives at bit (c & 63) of word (c >> 6), LSB-first.  Because 64 is
// even, a digit's global parity equals its bit parity, so the paper's
// two-step schedule (step 1 = even/cell1 digits, step 2 = odd/cell2 digits,
// Sec. III-B3) is the same mismatch test under constant parity masks.  The
// two-step kernel reproduces arch::two_step_search semantics AND its
// SearchStats bit-exactly: invalid rows and step-1 mismatches terminate
// early (step1_misses), only survivors evaluate the odd digits
// (step2_evaluated), and matches are flagged per row.
//
// Storage is PLANAR (word-major): word w of every row is contiguous in
// memory (`care[w * rows_pad + r]`), rows padded to a multiple of 64.
// That makes word 0 of consecutive rows a streaming read for the scalar
// kernel, and lets the AVX2 kernel compare 4 rows per 256-bit vector with
// plain aligned-ish loads (no gathers).  Padded rows have care = value =
// valid = 0, so they can never match or perturb statistics.
//
// Kernel tiers: the scalar uint64 loop is the golden reference; an AVX2
// path (compiled only when -DFETCAM_SIMD=ON and the compiler supports
// -mavx2) is selected at runtime via CPU detection.  Both tiers are
// lane- and stats-exact against each other and against the behavioral
// reference — enforced by tests/engine/kernel_differential_test.cpp.
//
// Match results are reported as a row bitmask (64 rows per word) so the
// sharded table can priority-scan hits with countr_zero instead of walking
// a std::vector<bool>.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/behavioral_array.hpp"
#include "arch/search_scheduler.hpp"

namespace fetcam::engine {

/// Match-loop implementation tier.  kScalar is the golden reference and is
/// always available; kAvx2 requires both compile-time support
/// (-DFETCAM_SIMD=ON + a -mavx2-capable compiler) and runtime CPU support.
enum class KernelTier : std::uint8_t { kScalar = 0, kAvx2 = 1 };

/// Largest query block the blocked kernels accept.  Eight keeps the AVX2
/// per-query mismatch accumulators register-resident (8 ymm accumulators +
/// the shared care/value/broadcast registers fit in 16); larger blocks
/// spill and lose the bandwidth win they were buying.
inline constexpr int kMaxQueryBlock = 8;

const char* kernel_tier_name(KernelTier tier);

/// True when `tier` was compiled in AND the running CPU supports it.
bool kernel_tier_available(KernelTier tier);

/// Best available tier on this machine (runtime CPU dispatch).
KernelTier best_kernel_tier();

/// Tier PackedShard uses when no explicit tier is passed: the override if
/// one is set, otherwise best_kernel_tier().
KernelTier active_kernel_tier();

/// Force a tier process-wide (testing / benchmarking — e.g. measuring the
/// scalar floor on an AVX2 machine).  Throws std::invalid_argument if the
/// tier is unavailable.  Pass reset=true via clear_kernel_tier_override to
/// restore runtime dispatch.
void set_kernel_tier_override(KernelTier tier);
void clear_kernel_tier_override();

namespace detail {

/// Borrowed view of one shard's planar arrays, consumed by the per-tier
/// kernels.  `mask` outputs are rows_pad/64 words, caller-zeroed.
struct ShardView {
  const std::uint64_t* care = nullptr;   ///< wpr planes of rows_pad words
  const std::uint64_t* value = nullptr;  ///< same shape as care
  const std::uint64_t* valid = nullptr;  ///< rows_pad/64 words
  int rows = 0;      ///< real row count
  int rows_pad = 0;  ///< padded row count (multiple of 64)
  int wpr = 0;       ///< words per row (ceil(cols/64))
};

arch::SearchStats full_match_scalar(const ShardView& s,
                                    const std::uint64_t* query,
                                    std::uint64_t* match_mask);
arch::SearchStats two_step_match_scalar(const ShardView& s,
                                        const std::uint64_t* query,
                                        std::uint64_t* match_mask);
// Defined in packed_kernel_avx2.cpp (FETCAM_HAVE_AVX2 builds only).
arch::SearchStats full_match_avx2(const ShardView& s,
                                  const std::uint64_t* query,
                                  std::uint64_t* match_mask);
arch::SearchStats two_step_match_avx2(const ShardView& s,
                                      const std::uint64_t* query,
                                      std::uint64_t* match_mask);

// Query-blocked kernels: match nq (1..kMaxQueryBlock) queries in ONE pass
// over the shard's planar words, so each care/value word loaded from
// memory is reused nq times instead of once.  queries[q] points to wpr
// packed words; match_masks[q] points to rows_pad/64 words and is fully
// overwritten; stats[q] is reset and filled.  Per-query masks and stats
// are BIT-EXACT against the single-query kernels for every q — block
// composition only changes cost, never results (the determinism argument
// the engine's block scheduler rests on, docs/ENGINE.md).
void full_match_block_scalar(const ShardView& s,
                             const std::uint64_t* const* queries, int nq,
                             std::uint64_t* const* match_masks,
                             arch::SearchStats* stats);
void two_step_match_block_scalar(const ShardView& s,
                                 const std::uint64_t* const* queries, int nq,
                                 std::uint64_t* const* match_masks,
                                 arch::SearchStats* stats);
void full_match_block_avx2(const ShardView& s,
                           const std::uint64_t* const* queries, int nq,
                           std::uint64_t* const* match_masks,
                           arch::SearchStats* stats);
void two_step_match_block_avx2(const ShardView& s,
                               const std::uint64_t* const* queries, int nq,
                               std::uint64_t* const* match_masks,
                               arch::SearchStats* stats);

}  // namespace detail

/// A query packed to the shard's digit layout: bit (c & 63) of word
/// (c >> 6) is query digit c; bits at and above `cols` are zero.
struct PackedQuery {
  int cols = 0;
  std::vector<std::uint64_t> bits;

  static PackedQuery pack(const arch::BitWord& query);
  /// Allocation-free repack into an existing PackedQuery (hot path: the
  /// engine packs every query once per fan-out task; reusing the buffer
  /// keeps that off the allocator).
  void repack(const arch::BitWord& query);
};

class PackedShard {
 public:
  /// rows entries of `cols` ternary digits, all-'X' and invalid (erased).
  /// rows >= 0, cols > 0.
  PackedShard(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int words_per_row() const { return words_per_row_; }

  /// Store an entry (marks the row valid).
  void write(int row, const arch::TernaryWord& entry);
  /// Invalidate a row (content is retained, like TcamArray::erase).
  void erase(int row);
  bool valid(int row) const;
  /// Reconstruct the stored word from the packed masks (exact: the packing
  /// is lossless per digit).
  arch::TernaryWord entry(int row) const;

  /// Single-step full match (TcamArray::search semantics: invalid rows
  /// never match).  Sets bit (r & 63) of match_mask[r >> 6] per matching
  /// row; stats are shaped like TcamController's single-step accounting
  /// (every row evaluates fully: step2_evaluated = rows, no step-1 misses).
  /// Uses active_kernel_tier(); the explicit-tier overload pins one.
  arch::SearchStats full_match(const PackedQuery& query,
                               std::vector<std::uint64_t>& match_mask) const;
  arch::SearchStats full_match(const PackedQuery& query,
                               std::vector<std::uint64_t>& match_mask,
                               KernelTier tier) const;

  /// Two-step early-terminating match, bit-exact vs arch::two_step_search
  /// (match flags and SearchStats).  Requires an even word length.
  arch::SearchStats two_step_match(const PackedQuery& query,
                                   std::vector<std::uint64_t>& match_mask) const;
  arch::SearchStats two_step_match(const PackedQuery& query,
                                   std::vector<std::uint64_t>& match_mask,
                                   KernelTier tier) const;

  /// Query-blocked match: nq (1..kMaxQueryBlock) queries in one pass over
  /// the planar words.  match_masks[q] must hold mask_words() words and is
  /// fully overwritten; stats[q] is reset.  Per-query results are
  /// bit-exact vs the single-query kernels regardless of block
  /// composition.  The tier-less overloads use active_kernel_tier().
  void full_match_block(const PackedQuery* const* queries, int nq,
                        std::uint64_t* const* match_masks,
                        arch::SearchStats* stats) const;
  void full_match_block(const PackedQuery* const* queries, int nq,
                        std::uint64_t* const* match_masks,
                        arch::SearchStats* stats, KernelTier tier) const;
  void two_step_match_block(const PackedQuery* const* queries, int nq,
                            std::uint64_t* const* match_masks,
                            arch::SearchStats* stats) const;
  void two_step_match_block(const PackedQuery* const* queries, int nq,
                            std::uint64_t* const* match_masks,
                            arch::SearchStats* stats, KernelTier tier) const;

  /// Convenience wrappers mirroring the behavioral API (used by the
  /// golden-equivalence tests).
  std::vector<bool> search(const arch::BitWord& query) const;
  arch::ScheduledSearchResult two_step_search(const arch::BitWord& query) const;

  /// Words in a row bitmask covering all rows.
  std::size_t mask_words() const {
    return static_cast<std::size_t>(rows_pad_) / 64;
  }

  /// Borrowed read-only view of the planar arrays, consumed by the
  /// per-tier kernels (including the approximate-match kernels in
  /// approx_kernel.hpp, which live in their own translation unit).
  /// Valid until the next mutating call.
  detail::ShardView view() const;

 private:
  void check_row(int row) const;
  void check_query(const PackedQuery& query) const;
  void check_block(const PackedQuery* const* queries, int nq) const;
  std::size_t plane_index(int row, int word) const {
    return static_cast<std::size_t>(word) *
               static_cast<std::size_t>(rows_pad_) +
           static_cast<std::size_t>(row);
  }

  int rows_;
  int cols_;
  int words_per_row_;
  int rows_pad_;  ///< rows rounded up to a multiple of 64 (0 when rows = 0)
  std::vector<std::uint64_t> care_;   ///< planar: wpr x rows_pad
  std::vector<std::uint64_t> value_;  ///< planar: wpr x rows_pad
  std::vector<std::uint64_t> valid_;  ///< row bitmask, 64 rows/word
};

}  // namespace fetcam::engine
