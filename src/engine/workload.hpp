// Workload layer for the TCAM service engine: seeded trace generation,
// trace file I/O, and a shared trace-driven run harness.
//
// Traces model the two applications the paper's introduction cites for
// associative search:
//   * kIpPrefix — longest-prefix-match routing: rules are bit prefixes
//     with 'X' host bits; priority = cols - prefix_length so the longest
//     prefix wins the (priority, id) resolution.
//   * kClassifier — packet classification: the word is split into four
//     fields (addresses / proto / port -like); each rule wildcards whole
//     fields; priority = number of wildcarded fields (more specific wins).
//   * kEmbedding — similarity search over binary(-quantized) embedding
//     codes: rules are fully-specified random words at priority 0, and a
//     `match_rate` fraction of queries is a PLANTED NEAR-DUPLICATE of a
//     stored rule (0-2 whole digits flipped, digit width = digit_bits),
//     the rest uniform noise.  This is the approximate-match / kNN
//     workload: exact search misses the planted duplicates, threshold
//     search recovers them.
//
// Generation is counter-keyed per rule / per query (util::trial_rng), so a
// trace is a pure function of its spec: reordering generation, threading,
// or appending queries never changes existing entries.  The match rate is
// tunable: a `match_rate` fraction of queries is derived from a stored
// rule (its 'X' digits randomized), the rest drawn uniformly — low rates
// reproduce the >90 % step-1 miss regime the paper's early-termination
// energy argument assumes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/table.hpp"

namespace fetcam::engine {

enum class TraceKind : std::uint8_t { kIpPrefix, kClassifier, kEmbedding };

std::string trace_kind_name(TraceKind kind);

struct TraceSpec {
  TraceKind kind = TraceKind::kIpPrefix;
  int cols = 32;       ///< word width (even for two-step designs)
  int rules = 256;
  int queries = 10000;
  double match_rate = 0.25;  ///< fraction of queries derived from a rule
  /// kEmbedding only: digit width used when planting near-duplicates (a
  /// flip replaces one whole digit) — match the table's digit_bits.
  int digit_bits = 1;
  std::uint64_t seed = 1;
};

struct TraceRule {
  arch::TernaryWord entry;
  int priority = 0;
};

struct Trace {
  int cols = 0;
  std::vector<TraceRule> rules;
  std::vector<arch::BitWord> queries;
};

/// Deterministic generation: same spec, same trace — bit-for-bit.
Trace generate_trace(const TraceSpec& spec);

/// Plain-text trace format:
///   # comment
///   cols <n>
///   rule <ternary-string> <priority>
///   query <bit-string>
bool save_trace(const Trace& trace, const std::string& path);
std::optional<Trace> load_trace(const std::string& path);

/// Deterministic rule churn: the table-maintenance workload the update
/// planner exists for.  Each step edits a few rule words in place, drops
/// some rules and adds fresh ones, and occasionally shifts a priority.  A
/// leading `hot_fraction` of the rule list churns at `hot_modify_rate`
/// (routing-flap-style hot rules — the wear-leveling stress); the rest
/// churn at `modify_rate`.  Pure function of (rules, spec, step):
/// counter-keyed per rule, so thread count and call order never matter.
struct ChurnSpec {
  double modify_rate = 0.05;      ///< per-step word-edit chance, cold rules
  double hot_fraction = 0.10;     ///< leading rules that churn hot
  double hot_modify_rate = 0.75;  ///< per-step word-edit chance, hot rules
  double add_remove_rate = 0.03;  ///< per-step drop+replace chance (cold)
  double priority_jitter_rate = 0.02;  ///< per-step priority +/-1 chance
  std::uint64_t seed = 1;
};

std::vector<TraceRule> churn_rules(const std::vector<TraceRule>& rules,
                                   TraceKind kind, int cols,
                                   const ChurnSpec& spec, int step);

/// Options for driving one trace through an engine.
struct RunOptions {
  int batch_size = 256;
  /// Fraction of batch slots converted into rule rewrites (driver-multiplex
  /// pressure); chosen counter-keyed on (seed, request index).
  double update_rate = 0.0;
  std::uint64_t seed = 1;
};

/// Aggregate report of one trace run.  All fields are deterministic except
/// the wall-clock-derived ones (wall_s, qps, p50/p99), which exist for
/// throughput reporting only.
struct RunSummary {
  std::uint64_t requests = 0;
  std::uint64_t searches = 0;
  std::uint64_t writes = 0;
  std::uint64_t batches = 0;
  std::uint64_t hits = 0;
  double hit_rate = 0.0;
  double step1_miss_rate = 0.0;
  double energy_j = 0.0;            ///< table total (searches + writes)
  double energy_per_search_j = 0.0;
  long long driver_stalls = 0;
  long long write_cycles = 0;
  double model_time_s = 0.0;        ///< admission-model latency sum
  double wall_s = 0.0;              ///< measured (not deterministic)
  double qps = 0.0;                 ///< searches / wall_s
  double p50_batch_us = 0.0;
  double p99_batch_us = 0.0;
};

/// Load the trace's rules into `table` (in rule order) and return their
/// entry ids.  Throws if the table is too small.
std::vector<EntryId> load_rules(TcamTable& table, const Trace& trace);

/// Pruning-aware loader: buckets the rules by their leading even (step-1)
/// columns and gives each bucket a home mat, so every mat's aggregate
/// masks (TableConfig::mat_skip) stay unanimous on the key columns and
/// most queries prune most mats.  Overflow and wildcard-keyed rules are
/// spilled greedily to the open mat with the highest aggregate_overlap —
/// the placement that least damages the pruning index.  Match results are
/// placement-independent apart from (priority, id) tie-break order, which
/// follows insertion order as always.  ids[i] still belongs to
/// trace.rules[i].  Opt-in: the default load_rules stays insertion-
/// ordered so energy/endurance distributions of existing runs don't move.
std::vector<EntryId> load_rules_clustered(TcamTable& table,
                                          const Trace& trace);

/// Drive the trace's queries through `engine` in batches, optionally
/// interleaving rule rewrites, and summarize.  `rule_ids` is the mapping
/// returned by load_rules.
RunSummary run_trace(SearchEngine& engine, const TcamTable& table,
                     const Trace& trace, const std::vector<EntryId>& rule_ids,
                     const RunOptions& options);

// ---- approximate match / kNN --------------------------------------------

/// Options for driving a trace through the engine's kSearchNearest path.
struct NearestRunOptions {
  int batch_size = 256;
  int k = 4;          ///< neighbors per query
  int threshold = 1;  ///< max mismatching digits
  /// Recall is scored against a brute-force reference, which is
  /// O(rules x cols) per query — too slow to run on every query of a
  /// throughput trace.  Instead `recall_sample` evenly-strided queries are
  /// scored (all of them when queries <= recall_sample); the summary's
  /// recall_queries reports how many actually had a non-empty reference.
  int recall_sample = 2000;
};

struct NearestRunSummary {
  std::uint64_t requests = 0;
  std::uint64_t searches = 0;
  std::uint64_t batches = 0;
  std::uint64_t hits = 0;  ///< queries with at least one neighbor
  double hit_rate = 0.0;
  int k = 0;
  int threshold = 0;
  /// Mean |reference top-k ∩ engine top-k| / |reference top-k| over the
  /// sampled queries with a non-empty reference (1.0 when none have one).
  double recall_at_k = 1.0;
  std::uint64_t recall_queries = 0;  ///< sampled queries actually scored
  /// Winner (top-1) digit-distance histogram: distance_histogram[d] =
  /// queries whose best neighbor sits at distance d (size threshold + 1).
  std::vector<std::uint64_t> distance_histogram;
  double energy_j = 0.0;
  double energy_per_search_j = 0.0;
  double model_time_s = 0.0;
  double wall_s = 0.0;  ///< measured (not deterministic)
  double qps = 0.0;
  double p50_batch_us = 0.0;
  double p99_batch_us = 0.0;
};

/// Brute-force kNN reference: digit distance of `query` against every
/// trace rule, filtered by `threshold`, ordered by (distance, priority,
/// id) with id = rule_ids[rule], truncated to k.  The golden the engine's
/// search_nearest path (and recall_at_k) is scored against.
std::vector<NearCandidate> brute_force_nearest(
    const Trace& trace, const std::vector<EntryId>& rule_ids,
    const arch::BitWord& query, int digit_bits, int k, int threshold);

/// Drive the trace's queries through the engine as kSearchNearest
/// requests and summarize (digit width taken from table.config()).
NearestRunSummary run_nearest_trace(SearchEngine& engine,
                                    const TcamTable& table,
                                    const Trace& trace,
                                    const std::vector<EntryId>& rule_ids,
                                    const NearestRunOptions& options);

}  // namespace fetcam::engine
