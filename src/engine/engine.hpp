// Concurrent TCAM request engine: bounded batch admission with window
// coalescing, per-mat-group parallel match dispatch, deterministic
// in-order application, and a shared-HV-driver admission model.
//
// Execution model (the determinism contract, docs/ENGINE.md):
//
//   * Producers submit BATCHES of requests into a bounded MPMC queue
//     (backpressure: submit blocks while the queue is full).
//   * One coordinator thread drains batches strictly in submission order,
//     coalescing up to `coalesce_batches` per wakeup into a WINDOW.  A
//     window holds multiple batches only while they are pure-search — the
//     first batch carrying any mutation closes it — so how many batches
//     happen to be queued (a timing artifact) can never change results.
//   * Phase A — parallel match: the table's mats are split into
//     `mat_groups` contiguous groups, and every (search, group) pair in
//     the window becomes one partial-match task.  `dispatch_threads`
//     dispatcher threads (the coordinator counts as one) claim tasks from
//     a shared cursor; each partial writes its own pre-indexed slot, so
//     the claim schedule cannot influence anything observable.  The
//     coordinator then folds each search's partials in fixed group order
//     with merge_match — an associative (priority, id) resolution, so the
//     merged winner equals the single-dispatcher winner bit for bit.
//   * Phase B — serial application per batch, in submission order, on the
//     coordinator: ALL accounting and ALL writes apply in request order.
//   * Result: batch results, table contents, energy/endurance totals, and
//     search statistics are bit-identical for any dispatcher thread count
//     (1, 2, 8, ...), any mat_groups, any queue capacity, any coalescing
//     window, and any producer interleaving of distinct batches.
//
// Driver-multiplex admission (paper Sec. III-C / Fig. 6): within a mat,
// four 90-degree-rotated subarrays time-multiplex shared HV driver banks —
// one bank drives the BLs of one subarray or the SeLs of its pair, never
// both in a cycle.  A batch that mixes updates and searches therefore
// cannot overlap them on the same mat: the engine schedules write phases
// first (one phase per mat per cycle, paired-subarray searches stall and
// are counted), then runs the search broadcast.  The modeled batch latency
// is  write_cycles * write_pulse_s + searches * latency_full.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/hv_driver.hpp"
#include "engine/queue.hpp"
#include "engine/table.hpp"

namespace fetcam::obs {
class LatencyRecorder;
}

namespace fetcam::engine {

enum class RequestKind : std::uint8_t {
  kSearch,
  kSearchNearest,  ///< threshold kNN: top-k nearest stored words
  kUpdate,
  kErase,
  kInsert,       ///< allocate + write a new entry (result carries its id)
  kSetPriority,  ///< peripheral-only priority flip (no pulses)
  kRelocate,     ///< move an entry to another mat (wear leveling)
};

struct Request {
  RequestKind kind = RequestKind::kSearch;
  arch::BitWord query;        ///< kSearch / kSearchNearest
  EntryId target = kInvalidEntry;  ///< kUpdate / kErase / kSetPriority / kRelocate
  arch::TernaryWord entry;    ///< kUpdate / kInsert
  int priority = 0;           ///< kInsert / kSetPriority
  int mat = -1;               ///< kInsert placement hint / kRelocate target
  /// kSearchNearest: neighbors requested (0 = EngineOptions.k).
  int k = 0;
  /// kSearchNearest: max digit distance (-1 = EngineOptions.distance_threshold).
  int distance_threshold = -1;
  /// kUpdate only: delta rewrite (TcamTable::rewrite_digits — pulses only
  /// for changed digits) instead of a full row refresh.
  bool incremental = false;
};

inline Request make_search(arch::BitWord query) {
  Request r;
  r.kind = RequestKind::kSearch;
  r.query = std::move(query);
  return r;
}
/// kNN search: top-`k` stored words within `threshold` mismatching digits
/// of `query`.  k = 0 / threshold = -1 defer to the engine's configured
/// defaults (EngineOptions.k / .distance_threshold).
inline Request make_search_nearest(arch::BitWord query, int k = 0,
                                   int threshold = -1) {
  Request r;
  r.kind = RequestKind::kSearchNearest;
  r.query = std::move(query);
  r.k = k;
  r.distance_threshold = threshold;
  return r;
}
inline Request make_update(EntryId target, arch::TernaryWord entry) {
  Request r;
  r.kind = RequestKind::kUpdate;
  r.target = target;
  r.entry = std::move(entry);
  return r;
}
inline Request make_rewrite(EntryId target, arch::TernaryWord entry) {
  Request r;
  r.kind = RequestKind::kUpdate;
  r.target = target;
  r.entry = std::move(entry);
  r.incremental = true;
  return r;
}
inline Request make_erase(EntryId target) {
  Request r;
  r.kind = RequestKind::kErase;
  r.target = target;
  return r;
}
inline Request make_insert(arch::TernaryWord entry, int priority,
                           int mat = -1) {
  Request r;
  r.kind = RequestKind::kInsert;
  r.entry = std::move(entry);
  r.priority = priority;
  r.mat = mat;
  return r;
}
inline Request make_set_priority(EntryId target, int priority) {
  Request r;
  r.kind = RequestKind::kSetPriority;
  r.target = target;
  r.priority = priority;
  return r;
}
inline Request make_relocate(EntryId target, int mat) {
  Request r;
  r.kind = RequestKind::kRelocate;
  r.target = target;
  r.mat = mat;
  return r;
}

struct RequestResult {
  bool hit = false;
  EntryId entry = kInvalidEntry;
  int priority = 0;
  /// kSearchNearest only: best (smallest) digit distance, -1 on a miss.
  int distance = -1;
  /// kSearchNearest only: the top-k candidates ascending by
  /// (distance, priority, id); hit/entry/priority mirror neighbors[0].
  std::vector<NearCandidate> neighbors;
};

struct BatchResult {
  std::uint64_t seq = 0;  ///< batch sequence number (submission order)
  /// One result per request, same index order as the submitted batch.
  std::vector<RequestResult> results;
  /// Merged step statistics over the batch's searches.
  arch::SearchStats stats;
  long long driver_stalls = 0;  ///< searches stalled by write-held banks
  long long write_cycles = 0;   ///< cycles spent on write phases
  /// Deterministic modeled latency (admission model + per-op costs).
  double model_latency_s = 0.0;
  /// Measured wall time of the batch's processing (NOT deterministic;
  /// excluded from the bit-identical contract — reporting only).
  double wall_us = 0.0;
};

/// Engine configuration.  SearchEngine's constructor validates every
/// field and throws std::invalid_argument naming the offending one —
/// degenerate values (zero capacity, zero coalescing, non-positive
/// groups) used to reach the dispatcher as silent near-deadlocks.
struct EngineOptions {
  std::size_t queue_capacity = 8;  ///< batches admitted before submit blocks
                                   ///< (must be > 0)
  /// Duration of one HV write phase (a 1.5T1Fe row update issues 3).
  double write_pulse_s = 50e-9;
  /// Contiguous mat groups the broadcast is split into; every
  /// (search block, group) pair is one independently dispatched
  /// partial-match task.  Must be > 0; values above the table's mat count
  /// clamp down to it.  Purely a parallelism knob: partials merge in
  /// fixed group order, so results never depend on it.
  int mat_groups = 1;
  /// Dispatcher threads claiming partial-match tasks (the coordinator
  /// counts as one; n - 1 helpers are spawned).  0 resolves through
  /// util::thread_count() (--threads / FETCAM_THREADS), so existing
  /// thread sweeps exercise the multi-dispatcher path; negative values
  /// throw.
  int dispatch_threads = 0;
  /// Max batches the coordinator drains per wakeup into one fan-out
  /// window (must be > 0).  A window keeps multiple batches only while
  /// they are pure-search (the first mutating batch closes it), so
  /// coalescing is invisible in every result — it only amortizes fan-out
  /// overhead.
  std::size_t coalesce_batches = 4;
  /// Queries matched per kernel pass (1..kMaxQueryBlock): each window's
  /// searches are chunked into fixed submission-order blocks of this size
  /// so one streaming pass over a shard's planar words serves the whole
  /// block (docs/ENGINE.md "Query blocking").  1 = the single-query path.
  /// Purely a bandwidth knob: per-query results are bit-identical for
  /// every block size.
  int query_block = 8;
  /// Default top-k for kSearchNearest requests that leave Request::k at 0
  /// (must be >= 1).
  int k = 4;
  /// Default max digit distance for kSearchNearest requests that leave
  /// Request::distance_threshold at -1 (must be >= 0).
  int distance_threshold = 0;
};

/// One slow-query log entry: a batch that ranked in the engine's top-K by
/// total latency (submit -> applied).  The fingerprint is a stable 64-bit
/// hash of the batch shape and its first query, so a recurring pathological
/// request is recognizable across scrapes without shipping the payload.
struct SlowQuery {
  std::uint64_t seq = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t total_ns = 0;
  std::uint32_t requests = 0;
  std::uint32_t searches = 0;
  std::uint64_t fingerprint = 0;
};

class SearchEngine {
 public:
  /// The engine owns request ordering on `table`; while the engine is
  /// alive, mutate the table only through requests.
  SearchEngine(TcamTable& table, EngineOptions options = {});
  ~SearchEngine();  ///< drains the queue, then joins all engine threads

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// Enqueue a batch (MPMC: any thread may call).  Blocks while the queue
  /// is full.  The future resolves when the coordinator has applied the
  /// batch.  Batches are applied strictly in submission order.
  /// `trace_id` (0 = none) correlates this batch's trace spans and slow-
  /// query entries with the caller's request (e.g. a server frame id).
  std::future<BatchResult> submit(std::vector<Request> batch,
                                  std::uint64_t trace_id = 0);

  /// Synchronous convenience: submit + wait.  Same code path, same
  /// determinism.
  BatchResult execute(std::vector<Request> batch);

  /// Block until every batch submitted so far has been applied.
  void drain();

  /// Resolved (post-clamp) parallelism for reporting.
  int mat_groups() const { return mat_groups_; }
  int dispatch_threads() const { return dispatch_threads_; }
  int query_block() const { return options_.query_block; }

  /// Mat-skip pruning totals of the underlying table (fetcam.stats.v1).
  long long mats_considered() const { return table_.mats_considered(); }
  long long mats_skipped() const { return table_.mats_skipped(); }

  // Telemetry (totals over the engine lifetime; deterministic except where
  // noted on BatchResult and for windows(), which depends on queue timing).
  std::uint64_t batches() const { return batches_.load(); }
  std::uint64_t requests() const { return requests_.load(); }
  std::uint64_t searches() const { return searches_.load(); }
  /// kSearchNearest requests applied (also counted in searches()).
  std::uint64_t nearest_searches() const { return nearest_.load(); }
  std::uint64_t writes() const { return writes_.load(); }
  /// Coalesced fan-out windows processed (<= batches; timing-dependent).
  std::uint64_t windows() const { return windows_.load(); }
  long long driver_stalls() const { return driver_stalls_.load(); }
  long long driver_cycles() const { return driver_cycles_.load(); }
  double model_time_s() const { return model_time_s_.load(); }
  std::size_t queue_high_watermark() const { return queue_.high_watermark(); }
  /// Batches sitting in the admission queue right now.
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t queue_capacity() const { return queue_.capacity(); }
  /// Batches submitted but not yet applied (queued + being processed).
  /// Returns to 0 after drain() — the gauge-leak regression tests pin this.
  std::uint64_t in_flight() const {
    // completed_ is incremented just before the promise resolves; read it
    // first so a racing read can only misreport by one batch transiently,
    // never go negative.  After every future has resolved it is exact.
    const std::uint64_t done = completed_.load(std::memory_order_acquire);
    return submitted_.load(std::memory_order_acquire) - done;
  }
  /// Top-K batches by total latency, worst first (empty until the first
  /// batch completes with metrics on; obs-gated like all wall timings).
  std::vector<SlowQuery> slow_queries() const;
  /// Shared-bank utilization of one mat's scheduler (paper Fig. 6 model).
  double mat_utilization(int mat) const;

 private:
  struct Work {
    std::uint64_t seq = 0;
    std::vector<Request> batch;
    std::promise<BatchResult> promise;
    std::uint64_t trace_id = 0;   ///< caller correlation id (0 = none)
    std::uint64_t submit_ns = 0;  ///< obs::now_ns() at submit (metrics only)
  };

  /// One fan-out round: helpers + coordinator claim task indices from a
  /// shared cursor.  Heap-allocated and published by shared_ptr so a
  /// helper waking late sees the OLD round's exhausted cursor, never the
  /// next round's fresh one.
  struct Round {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };

  /// Field-by-field option validation (throws std::invalid_argument
  /// naming the offending field).  Runs in the member-init list, before
  /// the queue or any thread exists.
  static EngineOptions validate_options(EngineOptions options);

  void coordinator_loop();
  void helper_loop();
  /// Run fn(0..count) across the dispatcher threads; returns when all
  /// tasks completed.  Serial in-line when there are no helpers.
  void run_round(std::size_t count,
                 const std::function<void(std::size_t)>& fn);
  /// Phase A for works[begin, end): fan out (search x group) partials —
  /// exact matches into per-request TableMatch slots, nearest searches
  /// into per-request NearestMatch slots (same pre-indexed-slot +
  /// fixed-group-order-fold contract, so both are dispatcher-invariant).
  void match_window(std::vector<Work>& works, std::size_t begin,
                    std::size_t end,
                    std::vector<std::vector<TableMatch>>& matches,
                    std::vector<std::vector<NearestMatch>>& nears);
  /// Phase B + admission model for one batch (serial, coordinator only).
  BatchResult apply(Work& work, std::vector<TableMatch>& matches,
                    std::vector<NearestMatch>& nears, double t0);
  /// Slow-query log insert (coordinator only; metrics level).
  void note_slow_query(const Work& work, std::uint64_t total_ns,
                       std::size_t n_search);

  TcamTable& table_;
  EngineOptions options_;
  int mat_groups_ = 1;        ///< clamped to [1, mats]
  int dispatch_threads_ = 1;  ///< resolved (>= 1)
  /// Group g covers mats [bounds[g], bounds[g+1]).
  std::vector<int> group_bounds_;
  /// Per-mat-group phase-A latency recorders ("engine.stage.match.group<g>"),
  /// resolved once at construction so the task hot path never touches the
  /// registry mutex.
  std::vector<obs::LatencyRecorder*> group_match_lat_;
  /// Window-scoped query packs (coordinator only): each search lane is
  /// bit-packed once per window, then shared read-only by every
  /// (block, mat-group) task instead of being re-packed per task.
  std::vector<PackedQuery> packed_queries_;
  BoundedQueue<Work> queue_;
  /// One shared-driver scheduler per mat, persistent across batches.
  std::vector<arch::SharedDriverScheduler> mat_schedulers_;
  std::uint64_t next_seq_ = 0;
  std::mutex submit_mu_;  ///< orders seq assignment with queue push

  std::mutex round_mu_;
  std::condition_variable round_cv_;
  std::shared_ptr<Round> round_;
  std::uint64_t round_gen_ = 0;
  bool pool_stop_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  /// Last table pruning totals mirrored into the obs registry
  /// (coordinator-only, read/written in apply()).
  long long last_mats_considered_ = 0;
  long long last_mats_skipped_ = 0;
  /// Top-K slow batches, ascending by total_ns (coordinator inserts,
  /// scrapers copy under the mutex).
  static constexpr std::size_t kSlowQueryLog = 8;
  mutable std::mutex slow_mu_;
  std::vector<SlowQuery> slow_queries_;

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> searches_{0};
  std::atomic<std::uint64_t> nearest_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<long long> driver_stalls_{0};
  std::atomic<long long> driver_cycles_{0};
  std::atomic<double> model_time_s_{0.0};

  std::vector<std::thread> helpers_;
  std::thread coordinator_;
};

}  // namespace fetcam::engine
