// Sharded TCAM table: entries spread across N mats of bit-packed shards,
// with free-slot allocation, global priority resolution, and per-mat
// energy / endurance / write accounting.
//
// The paper's macro organization (Sec. III-C) tiles 1.5T1Fe subarrays into
// mats; a service-scale table is many mats searched broadside: every query
// is broadcast to all shards, each shard reports its matching rows, and the
// table resolves the global winner by (priority, entry id).  Writes touch
// exactly one mat — which is what makes the shared-HV-driver admission
// model (engine.hpp) interesting: a mat that is writing cannot serve the
// search broadcast.
//
// Accounting reuses the arch layer unchanged: one ArrayEnergyModel and one
// EnduranceModel per mat, fed the same per-mat SearchStats / switching-cell
// counts a TcamController would produce.  Matching itself is pure
// (TcamTable::match is const and thread-safe against other match calls);
// accounting and mutation are serial — the engine's dispatcher owns them.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "arch/endurance.hpp"
#include "arch/energy_model.hpp"
#include "arch/write_controller.hpp"
#include "engine/packed_kernel.hpp"

namespace fetcam::engine {

/// Stable handle for a stored entry.  Monotonically increasing; never
/// reused, so (priority, id) is a total order for deterministic
/// tie-breaking.
using EntryId = std::int64_t;
constexpr EntryId kInvalidEntry = -1;

struct TableConfig {
  arch::TcamDesign design = arch::TcamDesign::k1p5DgFe;
  int mats = 4;
  int rows_per_mat = 64;
  int cols = 64;
  /// Subarrays per mat sharing HV driver banks (paper Fig. 6; must be
  /// even).  Rows are striped contiguously: subarray = row / (rows/subs).
  int subarrays_per_mat = 4;
  /// Mat-skip pruning: consult the per-mat aggregate masks before each
  /// row scan and skip mats that provably cannot match (docs/ENGINE.md).
  /// Results and accounting are bit-identical either way — the knob
  /// exists for A/B measurement and the pruning tests.
  bool mat_skip = true;
  /// Bits per stored digit for the approximate-match path (FeCAM-style
  /// multi-level cells): d consecutive bit columns form one digit, and
  /// search_nearest counts mismatching digits (approx_kernel.hpp).  Must
  /// be in [1, 3] and divide cols.  Exact match is unaffected — it always
  /// operates on raw bit columns.
  int digit_bits = 1;
};

/// Mat-skip pruning index for one mat: for each bit column c, bit c of
/// require_one (require_zero) is set iff EVERY valid row cares about c and
/// stores '1' ('0') there.  A query with a 0 (1) at such a column
/// mismatches every valid row, so the whole mat is provably matchless —
/// two AND-type ops per word replace the row scan.  All-'X' columns (and
/// any column where even one row doesn't care) never set a bit, so they
/// can never prune.  Maintained incrementally from per-column counts on
/// every insert / erase / rewrite / relocate; bits at and above cols stay
/// zero so query padding cannot fake a proof.
struct MatAggregate {
  std::vector<std::uint64_t> require_one;   ///< ceil(cols/64) words
  std::vector<std::uint64_t> require_zero;  ///< same shape
  /// Counts backing the incremental update: valid rows whose digit at
  /// column c is '1' / '0' (an aggregate bit is set iff its count equals
  /// valid_rows — the form that survives erase, unlike a running AND).
  std::vector<int> one_count;
  std::vector<int> zero_count;
  int valid_rows = 0;

  bool operator==(const MatAggregate&) const = default;
};

/// Result of one broadcast search.  `stats` merges all mats; `per_mat`
/// carries each mat's own step accounting (what its energy model charges).
struct TableMatch {
  bool hit = false;
  EntryId entry = kInvalidEntry;
  int priority = 0;
  arch::SearchStats stats;
  std::vector<arch::SearchStats> per_mat;
};

/// Reusable per-thread buffers for TcamTable::match (query packing + row
/// bitmask); keeps the broadcast allocation-free on the hot path.
struct MatchScratch {
  PackedQuery query;
  std::vector<std::uint64_t> mask;
};

/// Reusable per-thread buffers for TcamTable::match_mats_block: one packed
/// query + row bitmask per block lane.  After the first call every lane's
/// buffers are warm, so a steady-state blocked broadcast allocates nothing.
struct BlockMatchScratch {
  std::vector<PackedQuery> queries;
  std::vector<std::vector<std::uint64_t>> masks;
};

/// Fold a partial (per-mat-group) match into an accumulated one: stats and
/// per_mat add, the winner resolves by (priority, id).  Associative and
/// commutative, so group merge order cannot change the result.
void merge_match(TableMatch& into, const TableMatch& part);

/// One approximate-match candidate.  The global order is (distance,
/// priority, id) ascending — a strict total order because ids are unique,
/// which is what makes the top-k merge deterministic at any dispatch
/// shape.
struct NearCandidate {
  EntryId entry = kInvalidEntry;
  int priority = 0;
  int distance = 0;
};

/// (distance, priority, id) ascending.
inline bool near_candidate_less(const NearCandidate& a,
                                const NearCandidate& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.entry < b.entry;
}

/// Result of one top-k threshold search (whole table or one mat group).
/// `top` is sorted by near_candidate_less and holds at most k candidates;
/// `stats`/`per_mat` follow the single-step accounting the approx kernels
/// report (approx_kernel.hpp).
struct NearestMatch {
  std::vector<NearCandidate> top;
  arch::SearchStats stats;
  std::vector<arch::SearchStats> per_mat;
};

/// Reusable buffers for TcamTable::nearest_mats (packed query + within
/// mask + per-row distances).
struct NearestScratch {
  PackedQuery query;
  std::vector<std::uint64_t> within;
  std::vector<std::uint16_t> distances;
};

/// Fold a partial (per-mat-group) nearest result: stats and per_mat add,
/// the sorted top lists merge and truncate to k.  Associative and
/// commutative (sorted-merge over a strict total order), so group merge
/// order cannot change the result — the engine folds groups in fixed
/// order anyway.
void merge_nearest(NearestMatch& into, const NearestMatch& part, int k);

/// Physical location of an entry (used by the driver-multiplex model).
struct EntryLocation {
  int mat = 0;
  int row = 0;
  int subarray = 0;
};

/// Projected cost of one row write (planner pricing; nothing is charged).
struct WriteCost {
  int phases = 0;       ///< HV driver pulses the plan issues
  int cells = 0;        ///< FeFET cells that switch polarization
  double energy_j = 0.0;
};

class TcamTable {
 public:
  explicit TcamTable(const TableConfig& config);

  const TableConfig& config() const { return config_; }
  int mats() const { return config_.mats; }
  int cols() const { return config_.cols; }
  bool two_step() const { return two_step_; }
  std::size_t capacity() const;
  std::size_t size() const { return live_; }

  /// Store an entry; lower `priority` values win searches (ties resolve to
  /// the older entry).  Allocates a free slot on the emptiest mat (lowest
  /// mat index on ties, lowest free row within the mat — deterministic).
  /// Returns kInvalidEntry when the table is full.
  EntryId insert(const arch::TernaryWord& entry, int priority);
  /// Targeted variant: allocate on `mat` specifically (the endurance-aware
  /// placer's lever).  mat < 0 falls back to the default emptiest-mat
  /// policy; a full target mat returns kInvalidEntry (no silent fallback —
  /// the placer accounted for capacity and must hear about drift).
  EntryId insert(const arch::TernaryWord& entry, int priority, int mat);
  /// Rewrite an existing entry in place (same slot, same priority unless
  /// given); charges the write plan like a controller update.
  void update(EntryId id, const arch::TernaryWord& entry);
  void update(EntryId id, const arch::TernaryWord& entry, int priority);
  /// In-place DELTA rewrite: drives only the digits that differ from the
  /// stored word (arch::incremental_*_plan), so an unchanged word costs
  /// zero pulses.  The compiler's delta planner issues these; update()
  /// stays the full row refresh a naive controller performs.
  void rewrite_digits(EntryId id, const arch::TernaryWord& entry);
  /// Peripheral-only priority change: the priority lives in the match
  /// resolver, not in FeFET cells, so no pulses and no energy are charged
  /// (the make-before-break applier's "flip" step).
  void set_priority(EntryId id, int priority);
  /// Remove an entry and recycle its slot (peripheral-only: no pulses).
  void erase(EntryId id);
  /// Move an entry to a free row on `target_mat`, keeping its id and
  /// priority.  Charges exactly ONE write — the 3-phase (or complementary)
  /// program of the word at the destination row — plus destination-row
  /// endurance; vacating the source row is peripheral-only, like erase.
  /// Returns false (and changes nothing) if target_mat has no free row.
  bool relocate(EntryId id, int target_mat);
  bool contains(EntryId id) const;
  std::optional<EntryLocation> locate(EntryId id) const;
  int priority_of(EntryId id) const;
  /// The stored word of a live entry (unpacked from its shard row).
  arch::TernaryWord entry_word(EntryId id) const;
  /// Free rows remaining on one mat (planner capacity checks).
  std::size_t free_rows(int mat) const;
  /// Price the write `next` would cost on top of `previous` (nullptr =
  /// erased slot), with this table's design/voltages.  Pure projection.
  WriteCost cost_write(const arch::TernaryWord& next,
                       const arch::TernaryWord* previous) const;
  /// Price a rewrite_digits of `next` over `previous` (delta plan).
  WriteCost cost_rewrite(const arch::TernaryWord& next,
                         const arch::TernaryWord& previous) const;

  /// Pure broadcast match: no accounting, const, safe to call from many
  /// threads concurrently (against other match calls only).
  void match(const arch::BitWord& query, MatchScratch& scratch,
             TableMatch& out) const;

  /// Partial broadcast over mats [mat_begin, mat_end): the unit of work a
  /// per-mat-group dispatcher claims.  `out.per_mat` is sized to ALL mats
  /// with zeros outside the range, so partials from disjoint groups merge
  /// by plain addition; the winner is this group's best (priority, id) —
  /// merge_match() folds group winners in any order to the same global
  /// winner match() reports.  Const and concurrency-safe like match().
  void match_mats(const arch::BitWord& query, int mat_begin, int mat_end,
                  MatchScratch& scratch, TableMatch& out) const;
  /// Pre-packed variant: the caller packed the query once (e.g. per
  /// engine window) and fans the same PackedQuery out to every mat-group
  /// task, so the per-task repack disappears from the hot path.
  void match_mats(const PackedQuery& query, int mat_begin, int mat_end,
                  MatchScratch& scratch, TableMatch& out) const;

  /// Query-blocked partial broadcast: nq (1..kMaxQueryBlock) queries
  /// against mats [mat_begin, mat_end) in ONE pass per shard, so each
  /// planar care/value word loaded from memory serves all nq queries.
  /// outs[q] receives exactly what match_mats(queries[q], ...) would have
  /// produced — per-query results never depend on block composition, the
  /// invariant the engine's block scheduler (and its determinism sweep)
  /// relies on.  Mats the pruning index proves matchless for a lane are
  /// skipped for that lane only; survivors form the kernel sub-block.
  /// Const and concurrency-safe like match().
  void match_mats_block(const arch::BitWord* const* queries, int nq,
                        int mat_begin, int mat_end,
                        BlockMatchScratch& scratch,
                        TableMatch* const* outs) const;
  /// Pre-packed variant (see the PackedQuery match_mats overload).
  void match_mats_block(const PackedQuery* const* queries, int nq,
                        int mat_begin, int mat_end,
                        BlockMatchScratch& scratch,
                        TableMatch* const* outs) const;

  /// Partial top-k threshold search over mats [mat_begin, mat_end) — the
  /// approximate-match analogue of match_mats.  Rows whose digit distance
  /// (config().digit_bits bits per digit) is <= threshold are candidates;
  /// the k best by (distance, priority, id) are returned sorted.
  /// `out.per_mat` is sized to ALL mats with zeros outside the range, so
  /// disjoint-group partials fold with merge_nearest in any order.  Mats
  /// the WIDENED pruning proof (see nearest_mat_skips) shows are beyond
  /// the threshold are skipped with accounting identical to a kernel
  /// scan, so mat_skip on/off cannot change results or energy.  Const and
  /// concurrency-safe like match().  Throws std::invalid_argument naming
  /// `k` / `distance_threshold` when out of range.
  void nearest_mats(const arch::BitWord& query, int k, int threshold,
                    int mat_begin, int mat_end, NearestScratch& scratch,
                    NearestMatch& out) const;
  /// Pre-packed variant (see the PackedQuery match_mats overload).
  void nearest_mats(const PackedQuery& query, int k, int threshold,
                    int mat_begin, int mat_end, NearestScratch& scratch,
                    NearestMatch& out) const;

  /// Serial convenience: whole-table nearest_mats + accounting.  At
  /// digit_bits = 1, threshold = 0, k = 1 the single candidate equals the
  /// exact search() winner.
  NearestMatch search_nearest(const arch::BitWord& query, int k,
                              int threshold);
  /// Charge one threshold search's energy/stats (serial, request order —
  /// mirrors account_search).
  void account_nearest(const NearestMatch& m);

  /// Incrementally-maintained pruning aggregate of one mat.
  const MatAggregate& aggregate(int mat) const {
    return aggregates_[checked_mat(mat)];
  }
  /// Golden rebuild: recompute the aggregate by scanning the shard's rows.
  /// The incremental-vs-rebuilt property test pins aggregate(m) ==
  /// scan_aggregate(m) under arbitrary churn.
  MatAggregate scan_aggregate(int mat) const;
  /// Columns of `word` that would keep mat's aggregate bits alive if
  /// inserted there (the endurance-aware placer's tie-break: prefer mats
  /// whose pruning index stays tight).
  int aggregate_overlap(int mat, const arch::TernaryWord& word) const;

  /// Pruning counters (lifetime totals; deterministic: every query tests
  /// every mat in its range exactly once, regardless of dispatch shape).
  long long mats_considered() const {
    return mats_considered_.load(std::memory_order_relaxed);
  }
  long long mats_skipped() const {
    return mats_skipped_.load(std::memory_order_relaxed);
  }

  /// Serial convenience: match + account in one call.
  TableMatch search(const arch::BitWord& query);
  /// Charge one broadcast search's energy/stats (serial; the engine calls
  /// this in request order after the parallel match phase).
  void account_search(const TableMatch& m);

  const PackedShard& shard(int mat) const { return shards_[checked_mat(mat)]; }
  const arch::ArrayEnergyModel& energy(int mat) const {
    return energy_[checked_mat(mat)];
  }
  const arch::EnduranceModel& endurance(int mat) const {
    return endurance_[checked_mat(mat)];
  }
  const arch::SearchStatsAccumulator& search_stats() const { return stats_; }
  long long write_pulses() const { return write_pulses_; }
  /// Write phases the last insert/update issued (driver-occupancy model).
  int last_write_phases() const { return last_write_phases_; }
  double total_energy_j() const;

 private:
  struct Slot {
    int mat = -1;
    int row = -1;
    int priority = 0;
    bool live = false;
  };

  std::size_t checked_mat(int mat) const;
  void check_entry(EntryId id) const;
  void write_slot(const Slot& slot, const arch::TernaryWord& entry);
  /// Pruning-index maintenance: fold a word into / out of a mat's
  /// per-column counts and refresh its aggregate masks.
  void aggregate_add(int mat, const arch::TernaryWord& word);
  void aggregate_remove(int mat, const arch::TernaryWord& word);
  void rebuild_aggregate_masks(MatAggregate& ag) const;
  /// Two-AND-per-word matchless proof for one (mat, query) pair.
  bool mat_skips(std::size_t mat, const PackedQuery& query) const;
  /// Widened proof for threshold search: the aggregate's guaranteed-miss
  /// columns, collapsed onto digit groups, lower-bound EVERY row's
  /// distance — the mat is skippable only when that bound exceeds the
  /// threshold.  The exact-match proof (any guaranteed-miss column) would
  /// silently mis-prune rows within the threshold.
  bool nearest_mat_skips(std::size_t mat, const PackedQuery& query,
                         int threshold) const;
  /// Stats a skipped (or empty) mat reports — exactly what its kernel
  /// would have produced, so accounting stays bit-identical.
  arch::SearchStats skipped_stats() const;
  /// Priority-scan one shard's hit mask into the accumulated winner.
  void scan_hits(std::size_t mat, const std::uint64_t* mask,
                 std::size_t words, TableMatch& out) const;

  TableConfig config_;
  bool two_step_;
  arch::WriteVoltages write_voltages_;
  std::vector<PackedShard> shards_;
  std::vector<arch::ArrayEnergyModel> energy_;
  std::vector<arch::EnduranceModel> endurance_;
  arch::SearchStatsAccumulator stats_;
  /// Per-mat min-heaps of free rows (smallest row first).
  std::vector<std::vector<int>> free_rows_;
  /// Slot table indexed by EntryId (monotonic; erased slots stay dead).
  std::vector<Slot> slots_;
  /// Per (mat, row): the EntryId currently stored there (priority scan).
  std::vector<std::vector<EntryId>> row_entry_;
  std::size_t live_ = 0;
  long long write_pulses_ = 0;
  int last_write_phases_ = 0;
  /// Per-mat pruning aggregates (maintained even when mat_skip is off, so
  /// toggling the knob or asking the placer never needs a rebuild).
  std::vector<MatAggregate> aggregates_;
  /// Pruning counters; mutable atomics because match paths are const and
  /// concurrency-safe.  Totals are deterministic, increment order is not.
  mutable std::atomic<long long> mats_considered_{0};
  mutable std::atomic<long long> mats_skipped_{0};
};

}  // namespace fetcam::engine
