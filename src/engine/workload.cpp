#include "engine/workload.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "arch/approx_search.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace fetcam::engine {

namespace {

// Counter-based RNG streams (util/rng.hpp convention): one stream per
// consumer so adding draws to one never perturbs another.
constexpr std::uint64_t kRuleStream = 0;
constexpr std::uint64_t kQueryStream = 1;
constexpr std::uint64_t kUpdateStream = 2;
constexpr std::uint64_t kChurnStream = 3;

arch::BitWord random_bits(std::mt19937& rng, int cols) {
  std::uniform_int_distribution<int> bit(0, 1);
  arch::BitWord q(static_cast<std::size_t>(cols));
  for (auto& b : q) b = static_cast<std::uint8_t>(bit(rng));
  return q;
}

TraceRule make_ip_prefix_rule(std::mt19937& rng, int cols) {
  // Prefix-length mix loosely shaped like a routing table: a few short
  // (default-ish) routes, a body of mid-length prefixes, a tail of
  // near-host routes.  Priority = cols - length, so longer prefixes win.
  std::uniform_int_distribution<int> bucket(0, 9);
  const int b = bucket(rng);
  int len;
  if (b == 0) {
    len = std::uniform_int_distribution<int>(0, cols / 4)(rng);
  } else if (b <= 6) {
    len = std::uniform_int_distribution<int>(cols / 2, 3 * cols / 4)(rng);
  } else {
    len = std::uniform_int_distribution<int>(3 * cols / 4, cols)(rng);
  }
  std::uniform_int_distribution<int> bit(0, 1);
  TraceRule r;
  r.entry.reserve(static_cast<std::size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    if (c < len) {
      r.entry.push_back(bit(rng) != 0 ? arch::Ternary::kOne
                                      : arch::Ternary::kZero);
    } else {
      r.entry.push_back(arch::Ternary::kX);
    }
  }
  r.priority = cols - len;
  return r;
}

TraceRule make_embedding_rule(std::mt19937& rng, int cols) {
  // A binary embedding code: every column specified, no wildcards, flat
  // priority — ranking among near-duplicates is purely by distance.
  std::uniform_int_distribution<int> bit(0, 1);
  TraceRule r;
  r.entry.reserve(static_cast<std::size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    r.entry.push_back(bit(rng) != 0 ? arch::Ternary::kOne
                                    : arch::Ternary::kZero);
  }
  return r;
}

TraceRule make_trace_rule(TraceKind kind, std::mt19937& rng, int cols);

TraceRule make_classifier_rule(std::mt19937& rng, int cols) {
  // Four fields (src / dst / proto / port -like), whole-field wildcards;
  // priority = wildcarded fields, so more specific rules win.
  const int base = cols / 4;
  const int rem = cols % 4;
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> bit(0, 1);
  TraceRule r;
  r.entry.reserve(static_cast<std::size_t>(cols));
  for (int f = 0; f < 4; ++f) {
    const int width = base + (f < rem ? 1 : 0);
    const bool wild = u(rng) < 0.3;
    if (wild) ++r.priority;
    for (int c = 0; c < width; ++c) {
      if (wild) {
        r.entry.push_back(arch::Ternary::kX);
      } else {
        r.entry.push_back(bit(rng) != 0 ? arch::Ternary::kOne
                                        : arch::Ternary::kZero);
      }
    }
  }
  return r;
}

TraceRule make_trace_rule(TraceKind kind, std::mt19937& rng, int cols) {
  switch (kind) {
    case TraceKind::kIpPrefix: return make_ip_prefix_rule(rng, cols);
    case TraceKind::kClassifier: return make_classifier_rule(rng, cols);
    case TraceKind::kEmbedding: return make_embedding_rule(rng, cols);
  }
  return make_ip_prefix_rule(rng, cols);
}

}  // namespace

std::string trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kIpPrefix: return "ip-prefix";
    case TraceKind::kClassifier: return "classifier";
    case TraceKind::kEmbedding: return "embedding";
  }
  return "?";
}

Trace generate_trace(const TraceSpec& spec) {
  if (spec.cols <= 0 || spec.rules < 0 || spec.queries < 0) {
    throw std::invalid_argument("trace spec needs cols > 0 and counts >= 0");
  }
  Trace trace;
  trace.cols = spec.cols;
  trace.rules.reserve(static_cast<std::size_t>(spec.rules));
  for (int i = 0; i < spec.rules; ++i) {
    auto rng = util::trial_rng(spec.seed, static_cast<std::uint64_t>(i),
                               kRuleStream);
    trace.rules.push_back(make_trace_rule(spec.kind, rng, spec.cols));
  }
  trace.queries.reserve(static_cast<std::size_t>(spec.queries));
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> bit(0, 1);
  const int d = spec.digit_bits > 0 ? spec.digit_bits : 1;
  for (int j = 0; j < spec.queries; ++j) {
    auto rng = util::trial_rng(spec.seed, static_cast<std::uint64_t>(j),
                               kQueryStream);
    const bool derive = !trace.rules.empty() && u(rng) < spec.match_rate;
    if (spec.kind == TraceKind::kEmbedding && derive) {
      // Planted near-duplicate: copy a stored code, then flip 0-2 whole
      // digits (a flip inverts one bit inside the digit, so the digit is
      // guaranteed to mismatch).  Exact search loses these the moment a
      // single digit flips; threshold search is supposed to recover them.
      const std::size_t r = std::uniform_int_distribution<std::size_t>(
          0, trace.rules.size() - 1)(rng);
      const auto& entry = trace.rules[r].entry;
      arch::BitWord q(static_cast<std::size_t>(spec.cols));
      for (std::size_t c = 0; c < q.size(); ++c) {
        q[c] = entry[c] == arch::Ternary::kOne ? 1 : 0;
      }
      const int digits = spec.cols / d;
      const int flips = std::uniform_int_distribution<int>(0, 2)(rng);
      for (int f = 0; f < flips && digits > 0; ++f) {
        const int g = std::uniform_int_distribution<int>(0, digits - 1)(rng);
        const int c = g * d + std::uniform_int_distribution<int>(0, d - 1)(rng);
        q[static_cast<std::size_t>(c)] ^= 1;
      }
      trace.queries.push_back(std::move(q));
    } else if (derive) {
      // Derive from a stored rule: exact digits copied, 'X' digits drawn
      // at random — guaranteed to match at least that rule.
      const std::size_t r = std::uniform_int_distribution<std::size_t>(
          0, trace.rules.size() - 1)(rng);
      const auto& entry = trace.rules[r].entry;
      arch::BitWord q(static_cast<std::size_t>(spec.cols));
      for (std::size_t c = 0; c < q.size(); ++c) {
        switch (entry[c]) {
          case arch::Ternary::kOne: q[c] = 1; break;
          case arch::Ternary::kZero: q[c] = 0; break;
          case arch::Ternary::kX:
            q[c] = static_cast<std::uint8_t>(bit(rng));
            break;
        }
      }
      trace.queries.push_back(std::move(q));
    } else {
      trace.queries.push_back(random_bits(rng, spec.cols));
    }
  }
  return trace;
}

bool save_trace(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# fetcam engine trace v1\n";
  f << "cols " << trace.cols << "\n";
  for (const auto& r : trace.rules) {
    f << "rule " << arch::to_string(r.entry) << " " << r.priority << "\n";
  }
  for (const auto& q : trace.queries) {
    f << "query " << arch::to_string(q) << "\n";
  }
  return f.good();
}

std::optional<Trace> load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  Trace trace;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "cols") {
      if (!(is >> trace.cols) || trace.cols <= 0) return std::nullopt;
    } else if (tag == "rule") {
      std::string word;
      int priority = 0;
      if (!(is >> word >> priority)) return std::nullopt;
      TraceRule r;
      try {
        r.entry = arch::word_from_string(word);
      } catch (const std::invalid_argument&) {
        return std::nullopt;
      }
      if (static_cast<int>(r.entry.size()) != trace.cols) return std::nullopt;
      r.priority = priority;
      trace.rules.push_back(std::move(r));
    } else if (tag == "query") {
      std::string word;
      if (!(is >> word)) return std::nullopt;
      arch::BitWord q;
      try {
        q = arch::bits_from_string(word);
      } catch (const std::invalid_argument&) {
        return std::nullopt;
      }
      if (static_cast<int>(q.size()) != trace.cols) return std::nullopt;
      trace.queries.push_back(std::move(q));
    } else {
      return std::nullopt;
    }
  }
  if (trace.cols <= 0) return std::nullopt;
  return trace;
}

std::vector<TraceRule> churn_rules(const std::vector<TraceRule>& rules,
                                   TraceKind kind, int cols,
                                   const ChurnSpec& spec, int step) {
  if (cols <= 0) throw std::invalid_argument("churn needs cols > 0");
  std::vector<TraceRule> next;
  next.reserve(rules.size());
  const std::size_t hot_count = static_cast<std::size_t>(
      spec.hot_fraction * static_cast<double>(rules.size()));
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    // One stream per (step, rule): editing rule i never perturbs rule j.
    auto rng = util::trial_rng(
        spec.seed,
        (static_cast<std::uint64_t>(step) << 32) | static_cast<std::uint64_t>(i),
        kChurnStream);
    TraceRule r = rules[i];
    const bool hot = i < hot_count;
    if (!hot && u(rng) < spec.add_remove_rate) {
      // Drop this rule and add a fresh one (route withdrawn + announced).
      next.push_back(make_trace_rule(kind, rng, cols));
      continue;
    }
    const double rate = hot ? spec.hot_modify_rate : spec.modify_rate;
    if (u(rng) < rate) {
      // Edit 1-3 digits in place: the minimal-rewrite case the delta
      // planner should turn into a single in-place row update.
      const int edits = std::uniform_int_distribution<int>(1, 3)(rng);
      std::uniform_int_distribution<int> pos(0, cols - 1);
      std::uniform_int_distribution<int> digit(0, 2);
      for (int e = 0; e < edits; ++e) {
        r.entry[static_cast<std::size_t>(pos(rng))] =
            static_cast<arch::Ternary>(digit(rng));
      }
    }
    if (u(rng) < spec.priority_jitter_rate) {
      r.priority += std::uniform_int_distribution<int>(0, 1)(rng) != 0 ? 1 : -1;
      if (r.priority < 0) r.priority = 0;
    }
    next.push_back(std::move(r));
  }
  return next;
}

std::vector<EntryId> load_rules(TcamTable& table, const Trace& trace) {
  if (trace.rules.size() > table.capacity()) {
    throw std::invalid_argument("table too small for trace rules");
  }
  std::vector<EntryId> ids;
  ids.reserve(trace.rules.size());
  for (const auto& r : trace.rules) {
    const EntryId id = table.insert(r.entry, r.priority);
    if (id == kInvalidEntry) {
      throw std::runtime_error("table full while loading rules");
    }
    ids.push_back(id);
  }
  return ids;
}

std::vector<EntryId> load_rules_clustered(TcamTable& table,
                                          const Trace& trace) {
  if (trace.rules.size() > table.capacity()) {
    throw std::invalid_argument("table too small for trace rules");
  }
  const TableConfig& cfg = table.config();
  const int mats = cfg.mats;
  // Bucket key: the leading ceil(log2(mats)) even columns.  Even (step-1)
  // columns are the only ones a two-step design may prune on (see
  // TcamTable::mat_skips), so agreeing there is what keeps a mat's
  // aggregate masks tight.  Rules wildcarding any key column would poison
  // whichever mat they land in, so they go to the spill pass instead.
  int kbits = 0;
  while ((1 << kbits) < mats) ++kbits;
  const int nbuckets = 1 << kbits;
  std::vector<std::vector<std::size_t>> buckets(
      static_cast<std::size_t>(nbuckets));
  std::vector<std::size_t> spill;
  for (std::size_t i = 0; i < trace.rules.size(); ++i) {
    const auto& entry = trace.rules[i].entry;
    int key = 0;
    bool defined = true;
    for (int k = 0; k < kbits; ++k) {
      const std::size_t col = static_cast<std::size_t>(2 * k);
      if (col >= entry.size() || entry[col] == arch::Ternary::kX) {
        defined = false;
        break;
      }
      key = (key << 1) | (entry[col] == arch::Ternary::kOne ? 1 : 0);
    }
    if (defined) {
      buckets[static_cast<std::size_t>(key)].push_back(i);
    } else {
      spill.push_back(i);
    }
  }

  std::vector<int> room(static_cast<std::size_t>(mats), cfg.rows_per_mat);
  std::vector<EntryId> ids(trace.rules.size(), kInvalidEntry);
  const auto place = [&](std::size_t rule, int mat) {
    const EntryId id = table.insert(trace.rules[rule].entry,
                                    trace.rules[rule].priority, mat);
    if (id == kInvalidEntry) {
      throw std::runtime_error("mat full while clustering rules");
    }
    ids[rule] = id;
    --room[static_cast<std::size_t>(mat)];
  };
  // Pass 1: bucket b fills its home mat; overflow joins the spill.
  for (int b = 0; b < nbuckets; ++b) {
    const int mat = b * mats / nbuckets;
    for (const std::size_t rule : buckets[static_cast<std::size_t>(b)]) {
      if (room[static_cast<std::size_t>(mat)] > 0) {
        place(rule, mat);
      } else {
        spill.push_back(rule);
      }
    }
  }
  // Pass 2: spill rules go wherever they least damage the pruning index —
  // the open mat whose live aggregate they overlap most (ties: lowest
  // mat).  Deterministic: spill order and the greedy scan are both fixed.
  for (const std::size_t rule : spill) {
    int best = -1;
    int best_overlap = -1;
    for (int m = 0; m < mats; ++m) {
      if (room[static_cast<std::size_t>(m)] <= 0) continue;
      const int overlap = table.aggregate_overlap(m, trace.rules[rule].entry);
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best = m;
      }
    }
    place(rule, best);  // always found: total rules <= capacity
  }
  return ids;
}

RunSummary run_trace(SearchEngine& engine, const TcamTable& table,
                     const Trace& trace, const std::vector<EntryId>& rule_ids,
                     const RunOptions& options) {
  RunSummary sum;
  const double energy_before = table.total_energy_j();
  const int batch_size = options.batch_size > 0 ? options.batch_size : 256;
  std::uniform_real_distribution<double> u(0.0, 1.0);

  // Build all batches first (request kinds are needed again when the
  // results come back, to count hits over searches only).
  std::vector<std::vector<Request>> batches;
  std::vector<std::vector<RequestKind>> kinds;
  std::vector<Request> batch;
  std::vector<RequestKind> batch_kinds;
  batch.reserve(static_cast<std::size_t>(batch_size));
  for (std::size_t j = 0; j < trace.queries.size(); ++j) {
    bool is_update = false;
    if (options.update_rate > 0.0 && !rule_ids.empty()) {
      auto rng = util::trial_rng(options.seed, static_cast<std::uint64_t>(j),
                                 kUpdateStream);
      if (u(rng) < options.update_rate) {
        // Rule refresh: rewrite a stored rule in place (the classic TCAM
        // table-maintenance write) — driver-multiplex pressure without
        // changing what later queries match.
        const std::size_t r = std::uniform_int_distribution<std::size_t>(
            0, rule_ids.size() - 1)(rng);
        batch.push_back(make_update(rule_ids[r], trace.rules[r].entry));
        is_update = true;
      }
    }
    if (!is_update) batch.push_back(make_search(trace.queries[j]));
    batch_kinds.push_back(batch.back().kind);
    if (static_cast<int>(batch.size()) == batch_size) {
      batches.push_back(std::move(batch));
      kinds.push_back(std::move(batch_kinds));
      batch.clear();
      batch_kinds.clear();
      batch.reserve(static_cast<std::size_t>(batch_size));
    }
  }
  if (!batch.empty()) {
    batches.push_back(std::move(batch));
    kinds.push_back(std::move(batch_kinds));
  }

  // Submit everything (bounded queue applies backpressure), then collect
  // in order.
  const double t0 = obs::now_us();
  std::vector<std::future<BatchResult>> futures;
  futures.reserve(batches.size());
  for (auto& b : batches) futures.push_back(engine.submit(std::move(b)));

  std::vector<double> batch_wall_us;
  batch_wall_us.reserve(futures.size());
  long long rows_searched = 0;
  long long step1_misses = 0;
  for (std::size_t b = 0; b < futures.size(); ++b) {
    const BatchResult res = futures[b].get();
    ++sum.batches;
    sum.requests += res.results.size();
    sum.driver_stalls += res.driver_stalls;
    sum.write_cycles += res.write_cycles;
    sum.model_time_s += res.model_latency_s;
    rows_searched += res.stats.rows;
    step1_misses += res.stats.step1_misses;
    batch_wall_us.push_back(res.wall_us);
    for (std::size_t i = 0; i < res.results.size(); ++i) {
      if (kinds[b][i] == RequestKind::kSearch) {
        ++sum.searches;
        if (res.results[i].hit) ++sum.hits;
      } else if (kinds[b][i] == RequestKind::kUpdate) {
        ++sum.writes;
      }
    }
  }
  sum.wall_s = (obs::now_us() - t0) * 1e-6;

  sum.hit_rate = sum.searches > 0
                     ? static_cast<double>(sum.hits) /
                           static_cast<double>(sum.searches)
                     : 0.0;
  sum.step1_miss_rate =
      rows_searched > 0
          ? static_cast<double>(step1_misses) /
                static_cast<double>(rows_searched)
          : 0.0;
  sum.energy_j = table.total_energy_j() - energy_before;
  sum.energy_per_search_j =
      sum.searches > 0 ? sum.energy_j / static_cast<double>(sum.searches)
                       : 0.0;
  sum.qps = sum.wall_s > 0.0
                ? static_cast<double>(sum.searches) / sum.wall_s
                : 0.0;
  if (!batch_wall_us.empty()) {
    std::sort(batch_wall_us.begin(), batch_wall_us.end());
    sum.p50_batch_us = batch_wall_us[batch_wall_us.size() / 2];
    sum.p99_batch_us =
        batch_wall_us[(batch_wall_us.size() * 99) / 100 >=
                              batch_wall_us.size()
                          ? batch_wall_us.size() - 1
                          : (batch_wall_us.size() * 99) / 100];
  }
  return sum;
}

std::vector<NearCandidate> brute_force_nearest(
    const Trace& trace, const std::vector<EntryId>& rule_ids,
    const arch::BitWord& query, int digit_bits, int k, int threshold) {
  if (rule_ids.size() != trace.rules.size()) {
    throw std::invalid_argument("rule_ids does not cover the trace rules");
  }
  std::vector<NearCandidate> top;
  for (std::size_t r = 0; r < trace.rules.size(); ++r) {
    const int dist =
        arch::digit_distance(trace.rules[r].entry, query, digit_bits);
    if (dist > threshold) continue;
    NearCandidate cand;
    cand.entry = rule_ids[r];
    cand.priority = trace.rules[r].priority;
    cand.distance = dist;
    if (top.size() == static_cast<std::size_t>(k) &&
        !near_candidate_less(cand, top.back())) {
      continue;
    }
    const auto at = std::upper_bound(top.begin(), top.end(), cand,
                                     [](const NearCandidate& a,
                                        const NearCandidate& b) {
                                       return near_candidate_less(a, b);
                                     });
    top.insert(at, cand);
    if (top.size() > static_cast<std::size_t>(k)) top.pop_back();
  }
  return top;
}

NearestRunSummary run_nearest_trace(SearchEngine& engine,
                                    const TcamTable& table,
                                    const Trace& trace,
                                    const std::vector<EntryId>& rule_ids,
                                    const NearestRunOptions& options) {
  if (options.k < 1) throw std::invalid_argument("k must be >= 1");
  if (options.threshold < 0) {
    throw std::invalid_argument("distance_threshold must be >= 0");
  }
  NearestRunSummary sum;
  sum.k = options.k;
  sum.threshold = options.threshold;
  sum.distance_histogram.assign(
      static_cast<std::size_t>(options.threshold) + 1, 0);
  const double energy_before = table.total_energy_j();
  const int batch_size = options.batch_size > 0 ? options.batch_size : 256;
  const int digit_bits = table.config().digit_bits;
  // Evenly-strided recall sample (see NearestRunOptions::recall_sample).
  const std::size_t stride =
      options.recall_sample > 0
          ? std::max<std::size_t>(
                1, trace.queries.size() /
                       static_cast<std::size_t>(options.recall_sample))
          : 0;

  std::vector<std::vector<Request>> batches;
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(batch_size));
  for (const arch::BitWord& q : trace.queries) {
    batch.push_back(make_search_nearest(q, options.k, options.threshold));
    if (static_cast<int>(batch.size()) == batch_size) {
      batches.push_back(std::move(batch));
      batch.clear();
      batch.reserve(static_cast<std::size_t>(batch_size));
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));

  const double t0 = obs::now_us();
  std::vector<std::future<BatchResult>> futures;
  futures.reserve(batches.size());
  for (auto& b : batches) futures.push_back(engine.submit(std::move(b)));

  std::vector<double> batch_wall_us;
  batch_wall_us.reserve(futures.size());
  // Sampled (query, engine top-k) pairs, scored against the brute-force
  // reference AFTER the clock stops — the O(rules x cols) reference must
  // not pollute the throughput measurement.
  std::vector<std::pair<std::size_t, std::vector<NearCandidate>>> sampled;
  std::size_t query_index = 0;
  for (auto& future : futures) {
    const BatchResult res = future.get();
    ++sum.batches;
    sum.requests += res.results.size();
    sum.model_time_s += res.model_latency_s;
    batch_wall_us.push_back(res.wall_us);
    for (const RequestResult& r : res.results) {
      ++sum.searches;
      if (r.hit) {
        ++sum.hits;
        sum.distance_histogram[static_cast<std::size_t>(r.distance)] += 1;
      }
      if (stride > 0 && query_index % stride == 0) {
        sampled.emplace_back(query_index, r.neighbors);
      }
      ++query_index;
    }
  }
  sum.wall_s = (obs::now_us() - t0) * 1e-6;

  double recall_sum = 0.0;
  for (const auto& [q, neighbors] : sampled) {
    const auto ref = brute_force_nearest(trace, rule_ids, trace.queries[q],
                                         digit_bits, options.k,
                                         options.threshold);
    if (ref.empty()) continue;
    std::size_t found = 0;
    for (const NearCandidate& want : ref) {
      for (const NearCandidate& got : neighbors) {
        if (got.entry == want.entry) {
          ++found;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(found) / static_cast<double>(ref.size());
    ++sum.recall_queries;
  }

  sum.hit_rate = sum.searches > 0
                     ? static_cast<double>(sum.hits) /
                           static_cast<double>(sum.searches)
                     : 0.0;
  sum.recall_at_k = sum.recall_queries > 0
                        ? recall_sum / static_cast<double>(sum.recall_queries)
                        : 1.0;
  sum.energy_j = table.total_energy_j() - energy_before;
  sum.energy_per_search_j =
      sum.searches > 0 ? sum.energy_j / static_cast<double>(sum.searches)
                       : 0.0;
  sum.qps = sum.wall_s > 0.0
                ? static_cast<double>(sum.searches) / sum.wall_s
                : 0.0;
  if (!batch_wall_us.empty()) {
    std::sort(batch_wall_us.begin(), batch_wall_us.end());
    sum.p50_batch_us = batch_wall_us[batch_wall_us.size() / 2];
    sum.p99_batch_us =
        batch_wall_us[(batch_wall_us.size() * 99) / 100 >=
                              batch_wall_us.size()
                          ? batch_wall_us.size() - 1
                          : (batch_wall_us.size() * 99) / 100];
  }
  return sum;
}

}  // namespace fetcam::engine
