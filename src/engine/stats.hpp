// Service stats snapshot: one deterministic JSON document assembled from
// the engine's lifetime totals, the obs registry's stage latency
// recorders, the slow-query log, and (when scraped over the wire) the
// server's and the requesting connection's counters.
//
// The same renderer backs every consumer so the schema cannot drift:
//   * SearchServer's kStats opcode (engine/server.cpp),
//   * fetcam_cli engine --stats-interval/--stats-out,
//   * bench_engine_throughput's stats artifact.
//
// Schema (keys always present, sorted sections; "fetcam.stats.v1"):
//   { "schema", "kernel_tier",
//     "engine":  {totals, queue gauges, in_flight, config},
//     "stages":  {"<recorder>": {count, p50_us, p95_us, p99_us, p999_us,
//                                max_us, mean_us}, ...},
//     "slow_queries": [{seq, trace_id, total_us, requests, searches,
//                       fingerprint}, ...]  // worst first, top-8
//     "server", "connection" }              // null unless provided
//
// Stage percentiles populate only while the obs level is >= metrics (the
// recorders are hot-path-gated); the document itself is always valid.
#pragma once

#include <cstdint>
#include <string>

namespace fetcam::engine {

class SearchEngine;

/// Server-level counters for the "server" section of the snapshot.
struct ServerStatsView {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t frames_served = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t stats_served = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t force_closes = 0;
};

/// Counters of the connection a scrape arrived on ("connection" section).
struct ConnectionStatsView {
  std::uint64_t id = 0;  ///< server-assigned connection ordinal
  std::uint64_t frames = 0;
  std::uint64_t rejected = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t in_flight = 0;
};

std::string stats_snapshot_json(const SearchEngine& engine,
                                const ServerStatsView* server = nullptr,
                                const ConnectionStatsView* conn = nullptr);

}  // namespace fetcam::engine
