// AVX2 tier of the packed approximate-match kernel.  Same planar layout
// as packed_kernel_avx2.cpp: one 256-bit load covers 4 rows' care (or
// value) words, so the digit collapse and the per-lane popcount
// (pshufb nibble LUT + psadbw) run on 4 rows per vector op.
//
// Early exit is per 4-row group: once every lane's accumulated distance
// exceeds the threshold the remaining words cannot change any outcome.
// Lanes still within the threshold keep accumulating, so (within,
// distance) pairs are bit-exact against the scalar tier (enforced by
// tests/engine/approx_kernel_test.cpp).
#include "engine/approx_kernel.hpp"

#if defined(FETCAM_HAVE_AVX2)

#include <immintrin.h>

#include <bit>
#include <stdexcept>

namespace fetcam::engine::detail {

namespace {

constexpr std::uint64_t kEvenDigits = 0x5555555555555555ULL;
constexpr std::uint64_t kThirdMask[3] = {
    0x9249249249249249ULL,
    0x2492492492492492ULL,
    0x4924924924924924ULL,
};

/// Per-64-bit-lane popcount: nibble LUT via pshufb, lane sums via psadbw.
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), low);
  const __m256i cnt8 = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                       _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt8, _mm256_setzero_si256());
}

/// Fold a 4-row mismatch vector onto the digit-start bits (the vector
/// analogue of detail::collapse_digits — same per-lane result).
inline __m256i collapse_digits_epi64(__m256i mis, __m256i next, int w,
                                     int digit_bits) {
  switch (digit_bits) {
    case 1:
      return mis;
    case 2:
      return _mm256_and_si256(
          _mm256_or_si256(mis, _mm256_srli_epi64(mis, 1)),
          _mm256_set1_epi64x(static_cast<long long>(kEvenDigits)));
    case 3: {
      const __m256i s1 = _mm256_or_si256(_mm256_srli_epi64(mis, 1),
                                         _mm256_slli_epi64(next, 63));
      const __m256i s2 = _mm256_or_si256(_mm256_srli_epi64(mis, 2),
                                         _mm256_slli_epi64(next, 62));
      const __m256i gather =
          _mm256_or_si256(mis, _mm256_or_si256(s1, s2));
      return _mm256_and_si256(
          gather, _mm256_set1_epi64x(
                      static_cast<long long>(kThirdMask[(3 - w % 3) % 3])));
    }
    default:
      throw std::invalid_argument("digit_bits must be in [1, 3]");
  }
}

}  // namespace

arch::SearchStats approx_match_avx2(const ShardView& s,
                                    const std::uint64_t* query,
                                    int digit_bits, int threshold,
                                    std::uint64_t* within_mask,
                                    std::uint16_t* distances) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  stats.step2_evaluated = s.rows;  // single-step accounting
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  const __m256i thr = _mm256_set1_epi64x(static_cast<long long>(threshold));
  for (int i = 0; i < s.rows_pad; ++i) {
    distances[static_cast<std::size_t>(i)] = kDistanceOverflow;
  }
  for (int b = 0; b < blocks; ++b) {
    const std::size_t r0 = static_cast<std::size_t>(b) * 64;
    std::uint64_t ok_bits = 0;
    alignas(32) std::uint64_t group_dist[4];
    for (int g = 0; g < 16; ++g) {
      const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
      __m256i dist = _mm256_setzero_si256();
      const auto mis_at = [&](int w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + r;
        const __m256i q =
            _mm256_set1_epi64x(static_cast<long long>(query[w]));
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + at));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + at));
        return _mm256_and_si256(c, _mm256_xor_si256(v, q));
      };
      __m256i next = mis_at(0);
      for (int w = 0; w < s.wpr; ++w) {
        const __m256i mis = next;
        next = w + 1 < s.wpr ? mis_at(w + 1) : _mm256_setzero_si256();
        dist = _mm256_add_epi64(
            dist,
            popcount_epi64(collapse_digits_epi64(mis, next, w, digit_bits)));
        // All 4 rows already past the threshold: no later word can bring
        // a distance back down, so the group's outcome is settled.
        if (w + 1 < s.wpr &&
            _mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpgt_epi64(dist, thr))) == 0xf) {
          break;
        }
      }
      const std::uint64_t near_lanes =
          static_cast<std::uint64_t>(_mm256_movemask_pd(_mm256_castsi256_pd(
              _mm256_cmpgt_epi64(dist, thr)))) ^ 0xf;
      if (near_lanes != 0) {
        _mm256_store_si256(reinterpret_cast<__m256i*>(group_dist), dist);
        for (int l = 0; l < 4; ++l) {
          if (((near_lanes >> l) & 1ULL) == 0) continue;
          const std::size_t row = r + static_cast<std::size_t>(l);
          // The valid gate is applied below on the whole block; only
          // rows that survive it keep a real distance.
          if ((s.valid[static_cast<std::size_t>(b)] >>
               (g * 4 + l)) & 1ULL) {
            distances[row] = static_cast<std::uint16_t>(group_dist[l]);
          }
        }
      }
      ok_bits |= near_lanes << (g * 4);
    }
    const std::uint64_t within =
        ok_bits & s.valid[static_cast<std::size_t>(b)];
    within_mask[static_cast<std::size_t>(b)] = within;
    stats.matches += std::popcount(within);
  }
  return stats;
}

void approx_match_block_avx2(const ShardView& s,
                             const std::uint64_t* const* queries, int nq,
                             int digit_bits, int threshold,
                             std::uint64_t* const* within_masks,
                             std::uint16_t* const* distances,
                             arch::SearchStats* stats) {
  if (nq < 1 || nq > kMaxQueryBlock) {
    throw std::invalid_argument("block size out of range");
  }
  for (int q = 0; q < nq; ++q) {
    stats[q] = approx_match_avx2(s, queries[q], digit_bits, threshold,
                                 within_masks[q], distances[q]);
  }
}

}  // namespace fetcam::engine::detail

#endif  // FETCAM_HAVE_AVX2
