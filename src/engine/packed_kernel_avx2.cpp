// AVX2 tier of the PackedShard match kernels.  Compiled with -mavx2 only
// when FETCAM_SIMD=ON and the compiler supports the flag; selected at
// runtime via __builtin_cpu_supports("avx2") (packed_kernel.cpp).
//
// The planar layout stores word w of rows r..r+3 contiguously, so one
// 256-bit load covers 4 rows' care (or value) words — the mismatch test
//
//   care & (value ^ query) != 0
//
// runs on 4 rows per vector op with no gathers.  Rows are padded to a
// multiple of 64 with care = value = valid = 0: padded lanes report
// "match" out of the compare (zero care never mismatches) and are then
// stripped by the valid mask, exactly like erased rows.
//
// Statistics are computed from the per-64-row-block bitmasks with
// popcounts and are bit-exact against the scalar tier: the scalar loop's
// early termination changes how much work a row costs, never the
// mismatch outcome, so per-block popcount accounting reproduces the
// per-row counters exactly (enforced by kernel_differential_test).
#include "engine/packed_kernel.hpp"

#if defined(FETCAM_HAVE_AVX2)

#include <immintrin.h>

#include <bit>
#include <stdexcept>

namespace fetcam::engine::detail {

namespace {

constexpr std::uint64_t kEvenDigits = 0x5555555555555555ULL;
constexpr std::uint64_t kOddDigits = 0xAAAAAAAAAAAAAAAAULL;

/// 4 lanes -> 4 bits: 1 where the lane's accumulated mismatch word is 0.
inline std::uint64_t zero_lanes(__m256i acc) {
  const __m256i eq = _mm256_cmpeq_epi64(acc, _mm256_setzero_si256());
  return static_cast<std::uint64_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

/// True when every lane of the accumulated mismatch word is nonzero —
/// all 4 rows of the group have already mismatched, so the remaining
/// query words cannot change the outcome.  This is the vector analogue
/// of the scalar tier's per-row early termination and only affects how
/// much work a group costs, never the match bits (acc can only grow).
inline bool all_lanes_mismatch(__m256i acc) { return zero_lanes(acc) == 0; }

}  // namespace

arch::SearchStats full_match_avx2(const ShardView& s,
                                  const std::uint64_t* query,
                                  std::uint64_t* match_mask) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  stats.step2_evaluated = s.rows;  // single-step accounting
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  for (int b = 0; b < blocks; ++b) {
    const std::size_t r0 = static_cast<std::size_t>(b) * 64;
    std::uint64_t ok_bits = 0;
    for (int g = 0; g < 16; ++g) {
      const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
      __m256i acc = _mm256_setzero_si256();
      for (int w = 0; w < s.wpr; ++w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + r;
        const __m256i q = _mm256_set1_epi64x(
            static_cast<long long>(query[w]));
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + at));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + at));
        acc = _mm256_or_si256(acc,
                              _mm256_and_si256(c, _mm256_xor_si256(v, q)));
        if (w + 1 < s.wpr && all_lanes_mismatch(acc)) break;
      }
      ok_bits |= zero_lanes(acc) << (g * 4);
    }
    const std::uint64_t match = ok_bits & s.valid[static_cast<std::size_t>(b)];
    match_mask[static_cast<std::size_t>(b)] = match;
    stats.matches += std::popcount(match);
  }
  return stats;
}

arch::SearchStats two_step_match_avx2(const ShardView& s,
                                      const std::uint64_t* query,
                                      std::uint64_t* match_mask) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  const __m256i even = _mm256_set1_epi64x(static_cast<long long>(kEvenDigits));
  const __m256i odd = _mm256_set1_epi64x(static_cast<long long>(kOddDigits));
  for (int b = 0; b < blocks; ++b) {
    const std::size_t r0 = static_cast<std::size_t>(b) * 64;
    std::uint64_t step1_ok = 0;
    std::uint64_t step2_ok = 0;
    for (int g = 0; g < 16; ++g) {
      const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
      __m256i acc_even = _mm256_setzero_si256();
      __m256i acc_odd = _mm256_setzero_si256();
      for (int w = 0; w < s.wpr; ++w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + r;
        const __m256i q = _mm256_set1_epi64x(
            static_cast<long long>(query[w]));
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + at));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + at));
        const __m256i mis = _mm256_and_si256(c, _mm256_xor_si256(v, q));
        acc_even = _mm256_or_si256(acc_even, _mm256_and_si256(mis, even));
        acc_odd = _mm256_or_si256(acc_odd, _mm256_and_si256(mis, odd));
        // All 4 rows already fail step 1: their step-2 bits are masked
        // off by `alive` below, so the group's outcome is settled.
        if (w + 1 < s.wpr && all_lanes_mismatch(acc_even)) break;
      }
      step1_ok |= zero_lanes(acc_even) << (g * 4);
      step2_ok |= zero_lanes(acc_odd) << (g * 4);
    }
    // Invalid (and padded) rows miss in step 1, like the scalar tier.
    const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
    const std::uint64_t alive = step1_ok & valid;
    const int real_rows = s.rows - b * 64 < 64 ? s.rows - b * 64 : 64;
    const int alive_count = std::popcount(alive);
    stats.step1_misses += real_rows - alive_count;
    stats.step2_evaluated += alive_count;
    const std::uint64_t match = alive & step2_ok;
    match_mask[static_cast<std::size_t>(b)] = match;
    stats.matches += std::popcount(match);
  }
  return stats;
}

namespace {

// Query-blocked tiers: one pass over the planar words per 4-row vector
// group, the shared care/value loads reused by all NQ queries.  A single
// mismatch accumulator per query serves both steps because OR commutes
// with the parity masks: OR_w(mis_w & even) == (OR_w mis_w) & even, so
// the step-1 / step-2 zero tests read the even / odd halves of the same
// accumulator.  NQ is a template parameter so `acc` unrolls into NQ ymm
// registers (NQ <= kMaxQueryBlock = 8 accumulators + care/value/broadcast
// temporaries fit the 16 available).
template <int NQ>
void full_match_block_avx2_impl(const ShardView& s,
                                const std::uint64_t* const* queries,
                                std::uint64_t* const* match_masks,
                                arch::SearchStats* stats) {
  for (int q = 0; q < NQ; ++q) {
    stats[q] = arch::SearchStats{};
    stats[q].rows = s.rows;
    stats[q].step2_evaluated = s.rows;  // single-step accounting
  }
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  // One-word rows (cols <= 64, the serving sweet spot): each query's
  // broadcast is loop-invariant, so hoist all NQ of them out of the row
  // walk.  The row walk then shares every care/value load across NQ
  // queries at 3 ALU ops per query per 4-row group.
  if (s.wpr == 1) {
    __m256i qw[NQ];
    for (int q = 0; q < NQ; ++q) {
      qw[q] = _mm256_set1_epi64x(static_cast<long long>(queries[q][0]));
    }
    for (int b = 0; b < blocks; ++b) {
      const std::size_t r0 = static_cast<std::size_t>(b) * 64;
      std::uint64_t ok_bits[NQ] = {};
      for (int g = 0; g < 16; ++g) {
        const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + r));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + r));
        for (int q = 0; q < NQ; ++q) {
          const __m256i mis =
              _mm256_and_si256(c, _mm256_xor_si256(v, qw[q]));
          ok_bits[q] |= zero_lanes(mis) << (g * 4);
        }
      }
      const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
      for (int q = 0; q < NQ; ++q) {
        const std::uint64_t match = ok_bits[q] & valid;
        match_masks[q][static_cast<std::size_t>(b)] = match;
        stats[q].matches += std::popcount(match);
      }
    }
    return;
  }
  for (int b = 0; b < blocks; ++b) {
    const std::size_t r0 = static_cast<std::size_t>(b) * 64;
    std::uint64_t ok_bits[NQ] = {};
    for (int g = 0; g < 16; ++g) {
      const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
      __m256i acc[NQ];
      for (int q = 0; q < NQ; ++q) acc[q] = _mm256_setzero_si256();
      for (int w = 0; w < s.wpr; ++w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + r;
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + at));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + at));
        for (int q = 0; q < NQ; ++q) {
          const __m256i qw = _mm256_set1_epi64x(
              static_cast<long long>(queries[q][w]));
          acc[q] = _mm256_or_si256(
              acc[q], _mm256_and_si256(c, _mm256_xor_si256(v, qw)));
        }
      }
      for (int q = 0; q < NQ; ++q) {
        ok_bits[q] |= zero_lanes(acc[q]) << (g * 4);
      }
    }
    const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
    for (int q = 0; q < NQ; ++q) {
      const std::uint64_t match = ok_bits[q] & valid;
      match_masks[q][static_cast<std::size_t>(b)] = match;
      stats[q].matches += std::popcount(match);
    }
  }
}

template <int NQ>
void two_step_match_block_avx2_impl(const ShardView& s,
                                    const std::uint64_t* const* queries,
                                    std::uint64_t* const* match_masks,
                                    arch::SearchStats* stats) {
  for (int q = 0; q < NQ; ++q) {
    stats[q] = arch::SearchStats{};
    stats[q].rows = s.rows;
  }
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  const __m256i even = _mm256_set1_epi64x(static_cast<long long>(kEvenDigits));
  const __m256i odd = _mm256_set1_epi64x(static_cast<long long>(kOddDigits));
  // One-word fast path, as in the full-match tier: broadcasts hoisted,
  // no accumulator array (a single mismatch word feeds both parity
  // tests directly), so even NQ = 8 stays within the 16 ymm registers.
  if (s.wpr == 1) {
    __m256i qw[NQ];
    for (int q = 0; q < NQ; ++q) {
      qw[q] = _mm256_set1_epi64x(static_cast<long long>(queries[q][0]));
    }
    for (int b = 0; b < blocks; ++b) {
      const std::size_t r0 = static_cast<std::size_t>(b) * 64;
      std::uint64_t step1_ok[NQ] = {};
      std::uint64_t step2_ok[NQ] = {};
      for (int g = 0; g < 16; ++g) {
        const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + r));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + r));
        for (int q = 0; q < NQ; ++q) {
          const __m256i mis =
              _mm256_and_si256(c, _mm256_xor_si256(v, qw[q]));
          step1_ok[q] |= zero_lanes(_mm256_and_si256(mis, even)) << (g * 4);
          step2_ok[q] |= zero_lanes(_mm256_and_si256(mis, odd)) << (g * 4);
        }
      }
      const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
      const int real_rows = s.rows - b * 64 < 64 ? s.rows - b * 64 : 64;
      for (int q = 0; q < NQ; ++q) {
        const std::uint64_t alive = step1_ok[q] & valid;
        const int alive_count = std::popcount(alive);
        stats[q].step1_misses += real_rows - alive_count;
        stats[q].step2_evaluated += alive_count;
        const std::uint64_t match = alive & step2_ok[q];
        match_masks[q][static_cast<std::size_t>(b)] = match;
        stats[q].matches += std::popcount(match);
      }
    }
    return;
  }
  for (int b = 0; b < blocks; ++b) {
    const std::size_t r0 = static_cast<std::size_t>(b) * 64;
    std::uint64_t step1_ok[NQ] = {};
    std::uint64_t step2_ok[NQ] = {};
    for (int g = 0; g < 16; ++g) {
      const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
      __m256i acc[NQ];
      for (int q = 0; q < NQ; ++q) acc[q] = _mm256_setzero_si256();
      for (int w = 0; w < s.wpr; ++w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + r;
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + at));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + at));
        for (int q = 0; q < NQ; ++q) {
          const __m256i qw = _mm256_set1_epi64x(
              static_cast<long long>(queries[q][w]));
          acc[q] = _mm256_or_si256(
              acc[q], _mm256_and_si256(c, _mm256_xor_si256(v, qw)));
        }
      }
      for (int q = 0; q < NQ; ++q) {
        step1_ok[q] |= zero_lanes(_mm256_and_si256(acc[q], even)) << (g * 4);
        step2_ok[q] |= zero_lanes(_mm256_and_si256(acc[q], odd)) << (g * 4);
      }
    }
    // Invalid (and padded) rows miss in step 1; per-block popcount
    // accounting reproduces the scalar per-row counters exactly.
    const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
    const int real_rows = s.rows - b * 64 < 64 ? s.rows - b * 64 : 64;
    for (int q = 0; q < NQ; ++q) {
      const std::uint64_t alive = step1_ok[q] & valid;
      const int alive_count = std::popcount(alive);
      stats[q].step1_misses += real_rows - alive_count;
      stats[q].step2_evaluated += alive_count;
      const std::uint64_t match = alive & step2_ok[q];
      match_masks[q][static_cast<std::size_t>(b)] = match;
      stats[q].matches += std::popcount(match);
    }
  }
}

}  // namespace

void full_match_block_avx2(const ShardView& s,
                           const std::uint64_t* const* queries, int nq,
                           std::uint64_t* const* match_masks,
                           arch::SearchStats* stats) {
  switch (nq) {
    case 1: return full_match_block_avx2_impl<1>(s, queries, match_masks,
                                                 stats);
    case 2: return full_match_block_avx2_impl<2>(s, queries, match_masks,
                                                 stats);
    case 3: return full_match_block_avx2_impl<3>(s, queries, match_masks,
                                                 stats);
    case 4: return full_match_block_avx2_impl<4>(s, queries, match_masks,
                                                 stats);
    case 5: return full_match_block_avx2_impl<5>(s, queries, match_masks,
                                                 stats);
    case 6: return full_match_block_avx2_impl<6>(s, queries, match_masks,
                                                 stats);
    case 7: return full_match_block_avx2_impl<7>(s, queries, match_masks,
                                                 stats);
    case 8: return full_match_block_avx2_impl<8>(s, queries, match_masks,
                                                 stats);
    default:
      throw std::invalid_argument("block size out of range");
  }
}

void two_step_match_block_avx2(const ShardView& s,
                               const std::uint64_t* const* queries, int nq,
                               std::uint64_t* const* match_masks,
                               arch::SearchStats* stats) {
  switch (nq) {
    case 1: return two_step_match_block_avx2_impl<1>(s, queries, match_masks,
                                                     stats);
    case 2: return two_step_match_block_avx2_impl<2>(s, queries, match_masks,
                                                     stats);
    case 3: return two_step_match_block_avx2_impl<3>(s, queries, match_masks,
                                                     stats);
    case 4: return two_step_match_block_avx2_impl<4>(s, queries, match_masks,
                                                     stats);
    case 5: return two_step_match_block_avx2_impl<5>(s, queries, match_masks,
                                                     stats);
    case 6: return two_step_match_block_avx2_impl<6>(s, queries, match_masks,
                                                     stats);
    case 7: return two_step_match_block_avx2_impl<7>(s, queries, match_masks,
                                                     stats);
    case 8: return two_step_match_block_avx2_impl<8>(s, queries, match_masks,
                                                     stats);
    default:
      throw std::invalid_argument("block size out of range");
  }
}

}  // namespace fetcam::engine::detail

#endif  // FETCAM_HAVE_AVX2
