// AVX2 tier of the PackedShard match kernels.  Compiled with -mavx2 only
// when FETCAM_SIMD=ON and the compiler supports the flag; selected at
// runtime via __builtin_cpu_supports("avx2") (packed_kernel.cpp).
//
// The planar layout stores word w of rows r..r+3 contiguously, so one
// 256-bit load covers 4 rows' care (or value) words — the mismatch test
//
//   care & (value ^ query) != 0
//
// runs on 4 rows per vector op with no gathers.  Rows are padded to a
// multiple of 64 with care = value = valid = 0: padded lanes report
// "match" out of the compare (zero care never mismatches) and are then
// stripped by the valid mask, exactly like erased rows.
//
// Statistics are computed from the per-64-row-block bitmasks with
// popcounts and are bit-exact against the scalar tier: the scalar loop's
// early termination changes how much work a row costs, never the
// mismatch outcome, so per-block popcount accounting reproduces the
// per-row counters exactly (enforced by kernel_differential_test).
#include "engine/packed_kernel.hpp"

#if defined(FETCAM_HAVE_AVX2)

#include <immintrin.h>

#include <bit>

namespace fetcam::engine::detail {

namespace {

constexpr std::uint64_t kEvenDigits = 0x5555555555555555ULL;
constexpr std::uint64_t kOddDigits = 0xAAAAAAAAAAAAAAAAULL;

/// 4 lanes -> 4 bits: 1 where the lane's accumulated mismatch word is 0.
inline std::uint64_t zero_lanes(__m256i acc) {
  const __m256i eq = _mm256_cmpeq_epi64(acc, _mm256_setzero_si256());
  return static_cast<std::uint64_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

/// True when every lane of the accumulated mismatch word is nonzero —
/// all 4 rows of the group have already mismatched, so the remaining
/// query words cannot change the outcome.  This is the vector analogue
/// of the scalar tier's per-row early termination and only affects how
/// much work a group costs, never the match bits (acc can only grow).
inline bool all_lanes_mismatch(__m256i acc) { return zero_lanes(acc) == 0; }

}  // namespace

arch::SearchStats full_match_avx2(const ShardView& s,
                                  const std::uint64_t* query,
                                  std::uint64_t* match_mask) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  stats.step2_evaluated = s.rows;  // single-step accounting
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  for (int b = 0; b < blocks; ++b) {
    const std::size_t r0 = static_cast<std::size_t>(b) * 64;
    std::uint64_t ok_bits = 0;
    for (int g = 0; g < 16; ++g) {
      const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
      __m256i acc = _mm256_setzero_si256();
      for (int w = 0; w < s.wpr; ++w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + r;
        const __m256i q = _mm256_set1_epi64x(
            static_cast<long long>(query[w]));
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + at));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + at));
        acc = _mm256_or_si256(acc,
                              _mm256_and_si256(c, _mm256_xor_si256(v, q)));
        if (w + 1 < s.wpr && all_lanes_mismatch(acc)) break;
      }
      ok_bits |= zero_lanes(acc) << (g * 4);
    }
    const std::uint64_t match = ok_bits & s.valid[static_cast<std::size_t>(b)];
    match_mask[static_cast<std::size_t>(b)] = match;
    stats.matches += std::popcount(match);
  }
  return stats;
}

arch::SearchStats two_step_match_avx2(const ShardView& s,
                                      const std::uint64_t* query,
                                      std::uint64_t* match_mask) {
  arch::SearchStats stats;
  stats.rows = s.rows;
  const std::size_t pad = static_cast<std::size_t>(s.rows_pad);
  const int blocks = s.rows_pad / 64;
  const __m256i even = _mm256_set1_epi64x(static_cast<long long>(kEvenDigits));
  const __m256i odd = _mm256_set1_epi64x(static_cast<long long>(kOddDigits));
  for (int b = 0; b < blocks; ++b) {
    const std::size_t r0 = static_cast<std::size_t>(b) * 64;
    std::uint64_t step1_ok = 0;
    std::uint64_t step2_ok = 0;
    for (int g = 0; g < 16; ++g) {
      const std::size_t r = r0 + static_cast<std::size_t>(g) * 4;
      __m256i acc_even = _mm256_setzero_si256();
      __m256i acc_odd = _mm256_setzero_si256();
      for (int w = 0; w < s.wpr; ++w) {
        const std::size_t at = static_cast<std::size_t>(w) * pad + r;
        const __m256i q = _mm256_set1_epi64x(
            static_cast<long long>(query[w]));
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.care + at));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(s.value + at));
        const __m256i mis = _mm256_and_si256(c, _mm256_xor_si256(v, q));
        acc_even = _mm256_or_si256(acc_even, _mm256_and_si256(mis, even));
        acc_odd = _mm256_or_si256(acc_odd, _mm256_and_si256(mis, odd));
        // All 4 rows already fail step 1: their step-2 bits are masked
        // off by `alive` below, so the group's outcome is settled.
        if (w + 1 < s.wpr && all_lanes_mismatch(acc_even)) break;
      }
      step1_ok |= zero_lanes(acc_even) << (g * 4);
      step2_ok |= zero_lanes(acc_odd) << (g * 4);
    }
    // Invalid (and padded) rows miss in step 1, like the scalar tier.
    const std::uint64_t valid = s.valid[static_cast<std::size_t>(b)];
    const std::uint64_t alive = step1_ok & valid;
    const int real_rows = s.rows - b * 64 < 64 ? s.rows - b * 64 : 64;
    const int alive_count = std::popcount(alive);
    stats.step1_misses += real_rows - alive_count;
    stats.step2_evaluated += alive_count;
    const std::uint64_t match = alive & step2_ok;
    match_mask[static_cast<std::size_t>(b)] = match;
    stats.matches += std::popcount(match);
  }
  return stats;
}

}  // namespace fetcam::engine::detail

#endif  // FETCAM_HAVE_AVX2
