#include "numeric/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fetcam::num {

CsrMatrix CsrMatrix::from_triplets(const TripletAccumulator& acc) {
  CsrMatrix m;
  m.n_ = acc.dim();
  const std::size_t nnz_in = acc.entries();

  // Sort triplet indices by (row, col).
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto& rs = acc.rows();
  const auto& cs = acc.cols();
  const auto& vs = acc.vals();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rs[a] != rs[b] ? rs[a] < rs[b] : cs[a] < cs[b];
  });

  m.row_ptr_.assign(static_cast<std::size_t>(m.n_) + 1, 0);
  m.col_idx_.reserve(nnz_in);
  m.vals_.reserve(nnz_in);

  for (std::size_t k = 0; k < nnz_in;) {
    const Index r = rs[order[k]];
    const Index c = cs[order[k]];
    double sum = 0.0;
    while (k < nnz_in && rs[order[k]] == r && cs[order[k]] == c) {
      sum += vs[order[k]];
      ++k;
    }
    if (sum != 0.0) {
      m.col_idx_.push_back(c);
      m.vals_.push_back(sum);
      ++m.row_ptr_[static_cast<std::size_t>(r) + 1];
    }
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(m.n_); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

Vector CsrMatrix::multiply(const Vector& x) const {
  assert(x.size() == n_);
  Vector y(n_);
  for (Index r = 0; r < n_; ++r) {
    double s = 0.0;
    for (Index k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      s += vals_[static_cast<std::size_t>(k)] * x[col_idx_[static_cast<std::size_t>(k)]];
    }
    y[r] = s;
  }
  return y;
}

double CsrMatrix::at(Index r, Index c) const {
  assert(r >= 0 && r < n_ && c >= 0 && c < n_);
  const auto begin = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(r)];
  const auto end = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return vals_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::diagonal() const {
  Vector d(n_);
  for (Index r = 0; r < n_; ++r) d[r] = at(r, r);
  return d;
}

BicgstabResult solve_bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                              const BicgstabOptions& opts) {
  const Index n = a.dim();
  assert(b.size() == n && x.size() == n);
  BicgstabResult res;

  // Jacobi preconditioner; unit entries where the diagonal vanishes (MNA
  // voltage-source rows) keep it well-defined.
  Vector inv_diag = a.diagonal();
  for (Index i = 0; i < n; ++i) {
    inv_diag[i] = std::abs(inv_diag[i]) > 0.0 ? 1.0 / inv_diag[i] : 1.0;
  }
  const auto precond = [&](const Vector& v) {
    Vector out(n);
    for (Index i = 0; i < n; ++i) out[i] = inv_diag[i] * v[i];
    return out;
  };

  const double bnorm = std::max(b.two_norm(), 1e-300);
  Vector r = b;
  {
    const Vector ax = a.multiply(x);
    for (Index i = 0; i < n; ++i) r[i] -= ax[i];
  }
  Vector r0 = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  Vector v(n), p(n);

  for (int it = 0; it < opts.max_iter; ++it) {
    res.residual = r.two_norm();
    res.iterations = it;
    if (res.residual / bnorm < opts.rel_tol || res.residual < opts.abs_tol) {
      res.converged = true;
      return res;
    }
    double rho_next = 0.0;
    for (Index i = 0; i < n; ++i) rho_next += r0[i] * r[i];
    if (std::abs(rho_next) < 1e-300) break;  // breakdown
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (Index i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    const Vector phat = precond(p);
    v = a.multiply(phat);
    double r0v = 0.0;
    for (Index i = 0; i < n; ++i) r0v += r0[i] * v[i];
    if (std::abs(r0v) < 1e-300) break;
    alpha = rho / r0v;
    Vector s = r;
    for (Index i = 0; i < n; ++i) s[i] -= alpha * v[i];
    if (s.two_norm() / bnorm < opts.rel_tol) {
      x.axpy(alpha, phat);
      res.converged = true;
      res.residual = s.two_norm();
      res.iterations = it + 1;
      return res;
    }
    const Vector shat = precond(s);
    const Vector t = a.multiply(shat);
    double tt = 0.0, ts = 0.0;
    for (Index i = 0; i < n; ++i) {
      tt += t[i] * t[i];
      ts += t[i] * s[i];
    }
    if (tt < 1e-300) break;
    omega = ts / tt;
    for (Index i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    if (std::abs(omega) < 1e-300) break;
  }
  res.residual = r.two_norm();
  res.converged = res.residual / bnorm < opts.rel_tol;
  return res;
}

}  // namespace fetcam::num
