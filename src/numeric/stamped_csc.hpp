// Flat compressed-sparse-column matrix with stamp-pointer assembly.
//
// The MNA Jacobian's sparsity pattern is fixed for the life of a finalized
// Circuit, but the old assembly path rebuilt it from scratch every Newton
// iteration: push every stamp into a TripletAccumulator, then dedup into a
// freshly allocated vector-of-vectors CSC.  StampedCsc records the pattern
// once — from the first triplet-based assembly — together with the *stamp
// sequence* (which flat value slot the i-th add() call lands in).  Every
// later assembly is then a fill(0) plus indexed writes: no triplets, no
// dedup, no per-column allocation.
//
// The replay is verified: each add() checks the (row, col) of the incoming
// stamp against the recorded sequence, and end_fill() checks the call
// count, so any change in the stamp stream (a mode switch from operating
// point to transient, a netlist edit, a different gmin regime) is detected
// and reported to the caller, which falls back to triplet assembly and
// rebuilds the pattern.  Device stamp() implementations emit a
// deterministic call sequence for a given analysis mode, so the replay hits
// on every iteration after the first.
//
// Row ordering inside a column is FIRST-APPEARANCE order of the triplet
// stream, not sorted order.  The Gilbert-Peierls factorization's symbolic
// DFS starts from these lists, and its topological ordering — and therefore
// the floating-point summation order of the numeric phase — depends on
// them.  Preserving the order the old TripletAccumulator->CSC conversion
// produced keeps factorization results bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/sparse.hpp"

namespace fetcam::num {

class StampedCsc {
 public:
  /// Rebuild pattern + values from summed triplets and record the stamp
  /// sequence for later replay.  Bumps pattern_id().
  void build(const TripletAccumulator& a);

  Index dim() const { return n_; }
  std::size_t nonzeros() const { return vals_.size(); }
  bool has_pattern() const { return pattern_id_ != 0; }

  /// Process-unique, monotonically increasing id of the current pattern;
  /// 0 when no pattern has been built.  SparseLu keys its cached symbolic
  /// factorization on this.
  std::uint64_t pattern_id() const { return pattern_id_; }

  /// Start a replay assembly pass: zero all values, rewind the sequence
  /// cursor.  Requires has_pattern().
  void begin_fill();
  /// Accumulate one stamp through the recorded sequence.  Returns false on
  /// divergence from the recorded stream (pattern is stale); the caller
  /// must reassemble via triplets and build().
  bool add(Index r, Index c, double v) {
    if (cursor_ >= seq_.size()) return false;
    const SeqEntry& e = seq_[cursor_];
    if (e.row != r || e.col != c) return false;
    vals_[e.slot] += v;
    ++cursor_;
    return true;
  }
  /// Finish a replay pass; false when fewer stamps arrived than recorded.
  bool end_fill() const { return cursor_ == seq_.size(); }

  /// Pattern + values, CSC with first-appearance row order per column.
  const std::vector<Index>& col_ptr() const { return col_ptr_; }
  const std::vector<Index>& rows() const { return rows_; }
  const std::vector<double>& vals() const { return vals_; }

 private:
  struct SeqEntry {
    Index row;
    Index col;
    std::size_t slot;  ///< index into vals_
  };

  Index n_ = 0;
  std::uint64_t pattern_id_ = 0;
  std::vector<Index> col_ptr_;  // n_+1 entries
  std::vector<Index> rows_;     // first-appearance order per column
  std::vector<double> vals_;
  std::vector<SeqEntry> seq_;   // stamp i -> value slot
  std::size_t cursor_ = 0;
};

/// JacobianSink adapter for the replay path.  Swallows stamps after the
/// first mismatch; the caller checks ok() and falls back to triplets.
class StampedCscSink final : public JacobianSink {
 public:
  explicit StampedCscSink(StampedCsc& m) : m_(m) {}
  void add(Index r, Index c, double v) override {
    if (ok_) ok_ = m_.add(r, c, v);
  }
  bool ok() const { return ok_; }

 private:
  StampedCsc& m_;
  bool ok_ = true;
};

}  // namespace fetcam::num
