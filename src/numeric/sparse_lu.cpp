#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"

namespace fetcam::num {

namespace {

/// Reuse accounting shared by every SparseLu instance; the per-instance
/// Stats mirror the same events for tests that must not depend on the
/// process-wide registry state.
struct SparseLuMetrics {
  obs::Counter& factors;
  obs::Counter& refactors;
  obs::Counter& fallbacks;
  obs::Counter& singular;
  obs::Histogram& pivot_growth;

  static SparseLuMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static SparseLuMetrics m{
        reg.counter("lu.sparse.factors"),
        reg.counter("lu.sparse.refactors"),
        reg.counter("lu.sparse.refactor_fallbacks"),
        reg.counter("lu.sparse.singular"),
        // Min |pivot| / |column max| per refactor: 1.0 = recorded pivot is
        // still the column's largest entry, small = threshold pivoting is
        // carrying the factorization.
        reg.histogram("lu.sparse.pivot_growth",
                      obs::exponential_bounds(1e-8, 10.0, 9)),
    };
    return m;
  }
};

}  // namespace

void SparseLu::compute_row_scale(const StampedCsc& a) {
  // Row equilibration factors (1 / row inf-norm): conductance matrices span
  // many orders of magnitude between supply rows and leakage rows, and
  // pivot tests need a common scale.  Values stay raw in the assembly; the
  // scale is applied at scatter time (same product, same rounding as the
  // old scale-in-place conversion).
  const std::size_t nsz = static_cast<std::size_t>(n_);
  row_scale_.assign(nsz, 0.0);
  const auto& rows = a.rows();
  const auto& vals = a.vals();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    auto& m = row_scale_[static_cast<std::size_t>(rows[i])];
    m = std::max(m, std::abs(vals[i]));
  }
  for (auto& m : row_scale_) m = m > 0.0 ? 1.0 / m : 1.0;
  max_abs_ = 0.0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    max_abs_ = std::max(
        max_abs_,
        std::abs(vals[i] * row_scale_[static_cast<std::size_t>(rows[i])]));
  }
}

bool SparseLu::factor(const TripletAccumulator& a,
                      const SparseLuOptions& opts) {
  // The triplet form carries no pattern identity, so this path always runs
  // the full factor (one-shot solves and legacy callers).
  StampedCsc csc;
  csc.build(a);
  return full_factor(csc, opts);
}

bool SparseLu::factor(const StampedCsc& a, const SparseLuOptions& opts) {
  if (opts.reuse_symbolic && factored_ && a.pattern_id() != 0 &&
      a.pattern_id() == sym_pattern_id_) {
    if (try_refactor(a, opts)) return true;
    ++stats_.fallbacks;
    SparseLuMetrics::get().fallbacks.inc();
  }
  return full_factor(a, opts);
}

bool SparseLu::full_factor(const StampedCsc& a, const SparseLuOptions& opts) {
  auto& metrics = SparseLuMetrics::get();
  metrics.factors.inc();
  ++stats_.full_factors;

  n_ = a.dim();
  const std::size_t nsz = static_cast<std::size_t>(n_);
  factored_ = false;
  failed_col_ = -1;
  sym_pattern_id_ = 0;  // incomplete until the factor succeeds

  compute_row_scale(a);

  l_ptr_.assign(nsz + 1, 0);
  u_ptr_.assign(nsz + 1, 0);
  l_rows_.clear();
  l_vals_.clear();
  u_rows_.clear();
  u_vals_.clear();
  topo_ptr_.assign(nsz + 1, 0);
  topo_.clear();
  perm_.assign(nsz, -1);
  perm_inv_.assign(nsz, -1);  // orig row -> pivot col

  const double floor = opts.singular_tol * std::max(max_abs_, 1.0);

  // Workspaces for the symbolic DFS + numeric solve (reused across calls).
  x_.assign(nsz, 0.0);
  visited_.assign(nsz, -1);
  std::vector<Index> topo;  // this column's reach set, post-order
  topo.reserve(nsz);

  const auto& a_ptr = a.col_ptr();
  const auto& a_rows = a.rows();
  const auto& a_vals = a.vals();

  for (Index k = 0; k < n_; ++k) {
    // ---- symbolic: rows reachable from A(:,k) through eliminated columns.
    topo.clear();
    const Index a_begin = a_ptr[static_cast<std::size_t>(k)];
    const Index a_end = a_ptr[static_cast<std::size_t>(k) + 1];
    for (Index ai = a_begin; ai < a_end; ++ai) {
      const Index r0 = a_rows[static_cast<std::size_t>(ai)];
      if (visited_[static_cast<std::size_t>(r0)] == static_cast<int>(k)) {
        continue;
      }
      // Iterative DFS emitting nodes in post-order (=> reverse topological).
      dfs_stack_.assign(1, r0);
      dfs_pos_.assign(1, 0);
      visited_[static_cast<std::size_t>(r0)] = static_cast<int>(k);
      while (!dfs_stack_.empty()) {
        const Index r = dfs_stack_.back();
        const Index col = perm_inv_[static_cast<std::size_t>(r)];
        bool descended = false;
        if (col >= 0) {
          const Index lb = l_ptr_[static_cast<std::size_t>(col)];
          const Index le = l_ptr_[static_cast<std::size_t>(col) + 1];
          for (Index& p = dfs_pos_.back(); lb + p < le;) {
            const Index child = l_rows_[static_cast<std::size_t>(lb + p)];
            ++p;
            if (visited_[static_cast<std::size_t>(child)] !=
                static_cast<int>(k)) {
              visited_[static_cast<std::size_t>(child)] = static_cast<int>(k);
              dfs_stack_.push_back(child);
              dfs_pos_.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          topo.push_back(r);
          dfs_stack_.pop_back();
          dfs_pos_.pop_back();
        }
      }
    }
    // topo is in post-order = reverse topological; iterate reversed below.

    // ---- numeric: x = L \ A(:,k) over the reach set.
    for (const Index r : topo) x_[static_cast<std::size_t>(r)] = 0.0;
    for (Index ai = a_begin; ai < a_end; ++ai) {
      const Index r = a_rows[static_cast<std::size_t>(ai)];
      x_[static_cast<std::size_t>(r)] =
          a_vals[static_cast<std::size_t>(ai)] *
          row_scale_[static_cast<std::size_t>(r)];
    }
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const Index r = *it;
      const Index col = perm_inv_[static_cast<std::size_t>(r)];
      if (col < 0) continue;
      const double xr = x_[static_cast<std::size_t>(r)];
      if (xr == 0.0) continue;
      const Index lb = l_ptr_[static_cast<std::size_t>(col)];
      const Index le = l_ptr_[static_cast<std::size_t>(col) + 1];
      for (Index i = lb; i < le; ++i) {
        const double lv = l_vals_[static_cast<std::size_t>(i)];
        if (lv == 0.0) continue;  // kept structural zero: no numeric effect
        x_[static_cast<std::size_t>(l_rows_[static_cast<std::size_t>(i)])] -=
            lv * xr;
      }
    }

    // ---- pivot selection among non-eliminated rows.
    Index pivot_row = -1;
    double best = 0.0;
    double diag = 0.0;
    bool diag_present = false;
    for (const Index r : topo) {
      if (perm_inv_[static_cast<std::size_t>(r)] >= 0) continue;
      const double v = std::abs(x_[static_cast<std::size_t>(r)]);
      if (v > best) {
        best = v;
        pivot_row = r;
      }
      if (r == k) {
        diag = v;
        diag_present = true;
      }
    }
    if (pivot_row < 0 || best < floor) {
      failed_col_ = k;
      metrics.singular.inc();
      return false;
    }
    if (diag_present && diag >= opts.pivot_threshold * best) {
      pivot_row = k;  // prefer the structural diagonal: less fill
    }
    const double pivot = x_[static_cast<std::size_t>(pivot_row)];

    // ---- store U (eliminated rows, permuted indices) and L, and record
    // the reach set for refactor().  All reached positions are kept, so
    // the structure bounds any later value assignment.
    for (const Index r : topo) {
      const Index col = perm_inv_[static_cast<std::size_t>(r)];
      const double v = x_[static_cast<std::size_t>(r)];
      if (col >= 0) {
        u_rows_.push_back(col);
        u_vals_.push_back(v);
      } else if (r != pivot_row) {
        l_rows_.push_back(r);  // original row index; permuted copy built below
        l_vals_.push_back(v / pivot);
      }
      topo_.push_back(r);
    }
    u_rows_.push_back(k);  // U diagonal last
    u_vals_.push_back(pivot);
    perm_inv_[static_cast<std::size_t>(pivot_row)] = k;
    perm_[static_cast<std::size_t>(k)] = pivot_row;
    l_ptr_[static_cast<std::size_t>(k) + 1] =
        static_cast<Index>(l_rows_.size());
    u_ptr_[static_cast<std::size_t>(k) + 1] =
        static_cast<Index>(u_rows_.size());
    topo_ptr_[static_cast<std::size_t>(k) + 1] =
        static_cast<Index>(topo_.size());
  }

  // Permuted copy of L's row indices for solve().
  l_rows_perm_.resize(l_rows_.size());
  for (std::size_t i = 0; i < l_rows_.size(); ++i) {
    l_rows_perm_[i] = perm_inv_[static_cast<std::size_t>(l_rows_[i])];
  }
  sym_pattern_id_ = a.pattern_id();
  factored_ = true;
  return true;
}

bool SparseLu::try_refactor(const StampedCsc& a, const SparseLuOptions& opts) {
  assert(a.dim() == n_);
  compute_row_scale(a);
  const double floor = opts.singular_tol * std::max(max_abs_, 1.0);

  const auto& a_ptr = a.col_ptr();
  const auto& a_rows = a.rows();
  const auto& a_vals = a.vals();

  x_.assign(static_cast<std::size_t>(n_), 0.0);
  double min_growth = 1.0;

  for (Index k = 0; k < n_; ++k) {
    const Index t_begin = topo_ptr_[static_cast<std::size_t>(k)];
    const Index t_end = topo_ptr_[static_cast<std::size_t>(k) + 1];

    // ---- numeric: x = L \ A(:,k) along the recorded reach set.  The
    // recorded post-order IS the order a fresh DFS on this pattern would
    // produce, so the floating-point summation order matches a full factor
    // exactly.
    for (Index t = t_begin; t < t_end; ++t) {
      x_[static_cast<std::size_t>(topo_[static_cast<std::size_t>(t)])] = 0.0;
    }
    const Index a_begin = a_ptr[static_cast<std::size_t>(k)];
    const Index a_end = a_ptr[static_cast<std::size_t>(k) + 1];
    for (Index ai = a_begin; ai < a_end; ++ai) {
      const Index r = a_rows[static_cast<std::size_t>(ai)];
      x_[static_cast<std::size_t>(r)] =
          a_vals[static_cast<std::size_t>(ai)] *
          row_scale_[static_cast<std::size_t>(r)];
    }
    for (Index t = t_end - 1; t >= t_begin; --t) {
      const Index r = topo_[static_cast<std::size_t>(t)];
      const Index col = perm_inv_[static_cast<std::size_t>(r)];
      if (col < 0 || col >= k) continue;  // not yet eliminated at step k
      const double xr = x_[static_cast<std::size_t>(r)];
      if (xr == 0.0) continue;
      const Index lb = l_ptr_[static_cast<std::size_t>(col)];
      const Index le = l_ptr_[static_cast<std::size_t>(col) + 1];
      for (Index i = lb; i < le; ++i) {
        const double lv = l_vals_[static_cast<std::size_t>(i)];
        if (lv == 0.0) continue;
        x_[static_cast<std::size_t>(l_rows_[static_cast<std::size_t>(i)])] -=
            lv * xr;
      }
    }

    // ---- pivot re-verification: replay the threshold selection the full
    // factor would perform; any difference from the recorded pivot is a
    // degradation and triggers the fallback.
    Index pivot_row = -1;
    double best = 0.0;
    double diag = 0.0;
    bool diag_present = false;
    for (Index t = t_begin; t < t_end; ++t) {
      const Index r = topo_[static_cast<std::size_t>(t)];
      if (perm_inv_[static_cast<std::size_t>(r)] < k) continue;  // eliminated
      const double v = std::abs(x_[static_cast<std::size_t>(r)]);
      if (v > best) {
        best = v;
        pivot_row = r;
      }
      if (r == k) {
        diag = v;
        diag_present = true;
      }
    }
    if (pivot_row < 0 || best < floor) return false;  // singular drift
    if (diag_present && diag >= opts.pivot_threshold * best) {
      pivot_row = k;
    }
    if (pivot_row != perm_[static_cast<std::size_t>(k)]) return false;
    const double pivot = x_[static_cast<std::size_t>(pivot_row)];
    min_growth = std::min(min_growth, std::abs(pivot) / best);

    // ---- rewrite values in place along the recorded structure.
    Index ui = u_ptr_[static_cast<std::size_t>(k)];
    Index li = l_ptr_[static_cast<std::size_t>(k)];
    for (Index t = t_begin; t < t_end; ++t) {
      const Index r = topo_[static_cast<std::size_t>(t)];
      if (perm_inv_[static_cast<std::size_t>(r)] < k) {
        u_vals_[static_cast<std::size_t>(ui++)] =
            x_[static_cast<std::size_t>(r)];
      } else if (r != pivot_row) {
        l_vals_[static_cast<std::size_t>(li++)] =
            x_[static_cast<std::size_t>(r)] / pivot;
      }
    }
    assert(ui == u_ptr_[static_cast<std::size_t>(k) + 1] - 1);
    assert(li == l_ptr_[static_cast<std::size_t>(k) + 1]);
    u_vals_[static_cast<std::size_t>(
        u_ptr_[static_cast<std::size_t>(k) + 1] - 1)] = pivot;
  }

  last_min_growth_ = min_growth;
  ++stats_.refactors;
  auto& metrics = SparseLuMetrics::get();
  metrics.refactors.inc();
  if (obs::metrics_on()) metrics.pivot_growth.observe(min_growth);
  failed_col_ = -1;
  return true;
}

Vector SparseLu::solve(const Vector& b) const {
  Vector y = b;
  solve(y);
  return y;
}

void SparseLu::solve(Vector& b) const {
  assert(factored_);
  assert(b.size() == n_);
  const std::size_t nsz = static_cast<std::size_t>(n_);
  solve_scratch_.resize(nsz);
  double* y = solve_scratch_.data();
  for (Index i = 0; i < n_; ++i) {
    const Index orig = perm_[static_cast<std::size_t>(i)];
    y[i] = b[orig] * row_scale_[static_cast<std::size_t>(orig)];
  }
  // Forward: L y = P b (L unit-diagonal, strictly lower in permuted space).
  for (Index j = 0; j < n_; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    const Index lb = l_ptr_[static_cast<std::size_t>(j)];
    const Index le = l_ptr_[static_cast<std::size_t>(j) + 1];
    for (Index i = lb; i < le; ++i) {
      const double lv = l_vals_[static_cast<std::size_t>(i)];
      if (lv == 0.0) continue;  // kept structural zero
      y[l_rows_perm_[static_cast<std::size_t>(i)]] -= lv * yj;
    }
  }
  // Backward: U x = y (diagonal stored last per column).
  for (Index j = n_ - 1; j >= 0; --j) {
    const Index ub = u_ptr_[static_cast<std::size_t>(j)];
    const Index ue = u_ptr_[static_cast<std::size_t>(j) + 1];
    y[j] /= u_vals_[static_cast<std::size_t>(ue - 1)];
    const double yj = y[j];
    for (Index i = ub; i < ue - 1; ++i) {
      const double uv = u_vals_[static_cast<std::size_t>(i)];
      if (uv == 0.0) continue;  // kept structural zero
      y[u_rows_[static_cast<std::size_t>(i)]] -= uv * yj;
    }
  }
  for (Index i = 0; i < n_; ++i) b[i] = y[i];
}

std::size_t SparseLu::factor_nonzeros() const {
  std::size_t nnz = 0;
  for (const double v : l_vals_) nnz += v != 0.0 ? 1 : 0;
  for (const double v : u_vals_) nnz += v != 0.0 ? 1 : 0;
  return nnz;
}

std::optional<Vector> solve_sparse(const TripletAccumulator& a,
                                   const Vector& b) {
  SparseLu lu;
  if (!lu.factor(a)) return std::nullopt;
  return lu.solve(b);
}

}  // namespace fetcam::num
