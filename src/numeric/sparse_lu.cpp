#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"

namespace fetcam::num {

namespace {

/// A in compressed-sparse-column form with duplicates summed.
struct Csc {
  Index n = 0;
  std::vector<std::vector<Index>> rows;
  std::vector<std::vector<double>> vals;
  double max_abs = 0.0;

  /// Row equilibration factors (1 / row inf-norm), applied during the
  /// build; conductance matrices span many orders of magnitude between
  /// supply rows and leakage rows, and pivot tests need a common scale.
  std::vector<double> row_scale;

  explicit Csc(const TripletAccumulator& a)
      : n(a.dim()),
        rows(static_cast<std::size_t>(a.dim())),
        vals(static_cast<std::size_t>(a.dim())),
        row_scale(static_cast<std::size_t>(a.dim()), 0.0) {
    // Sum duplicates per column (linear scan per column is fine: MNA
    // columns have a handful of entries).
    for (std::size_t k = 0; k < a.entries(); ++k) {
      const Index c = a.cols()[k];
      const Index r = a.rows()[k];
      auto& cr = rows[static_cast<std::size_t>(c)];
      auto& cv = vals[static_cast<std::size_t>(c)];
      bool found = false;
      for (std::size_t i = 0; i < cr.size(); ++i) {
        if (cr[i] == r) {
          cv[i] += a.vals()[k];
          found = true;
          break;
        }
      }
      if (!found) {
        cr.push_back(r);
        cv.push_back(a.vals()[k]);
      }
    }
    for (std::size_t c = 0; c < rows.size(); ++c) {
      for (std::size_t i = 0; i < rows[c].size(); ++i) {
        auto& m = row_scale[static_cast<std::size_t>(rows[c][i])];
        m = std::max(m, std::abs(vals[c][i]));
      }
    }
    for (auto& m : row_scale) m = m > 0.0 ? 1.0 / m : 1.0;
    for (std::size_t c = 0; c < rows.size(); ++c) {
      for (std::size_t i = 0; i < rows[c].size(); ++i) {
        vals[c][i] *= row_scale[static_cast<std::size_t>(rows[c][i])];
      }
    }
    for (const auto& cv : vals) {
      for (const double v : cv) max_abs = std::max(max_abs, std::abs(v));
    }
  }
};

}  // namespace

bool SparseLu::factor(const TripletAccumulator& a,
                      const SparseLuOptions& opts) {
  static obs::Counter& factors =
      obs::MetricsRegistry::instance().counter("lu.sparse.factors");
  static obs::Counter& singular =
      obs::MetricsRegistry::instance().counter("lu.sparse.singular");
  factors.inc();
  const Csc csc(a);
  n_ = csc.n;
  factored_ = false;
  failed_col_ = -1;
  l_rows_.assign(static_cast<std::size_t>(n_), {});
  l_vals_.assign(static_cast<std::size_t>(n_), {});
  u_rows_.assign(static_cast<std::size_t>(n_), {});
  u_vals_.assign(static_cast<std::size_t>(n_), {});
  perm_.assign(static_cast<std::size_t>(n_), -1);
  perm_inv_.assign(static_cast<std::size_t>(n_), -1);  // orig row -> pivot col
  row_scale_ = csc.row_scale;

  const double floor = opts.singular_tol * std::max(csc.max_abs, 1.0);

  // Workspaces for the symbolic DFS + numeric solve.
  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
  std::vector<int> visited(static_cast<std::size_t>(n_), -1);
  std::vector<Index> topo;           // reach set in topological order
  std::vector<Index> dfs_stack, dfs_pos;
  topo.reserve(static_cast<std::size_t>(n_));

  for (Index k = 0; k < n_; ++k) {
    // ---- symbolic: rows reachable from A(:,k) through eliminated columns.
    topo.clear();
    const auto& ark = csc.rows[static_cast<std::size_t>(k)];
    for (const Index r0 : ark) {
      if (visited[static_cast<std::size_t>(r0)] == static_cast<int>(k)) {
        continue;
      }
      // Iterative DFS emitting nodes in post-order (=> reverse topological).
      dfs_stack.assign(1, r0);
      dfs_pos.assign(1, 0);
      visited[static_cast<std::size_t>(r0)] = static_cast<int>(k);
      while (!dfs_stack.empty()) {
        const Index r = dfs_stack.back();
        const Index col = perm_inv_[static_cast<std::size_t>(r)];
        bool descended = false;
        if (col >= 0) {
          auto& lr = l_rows_[static_cast<std::size_t>(col)];
          for (Index& p = dfs_pos.back(); p < static_cast<Index>(lr.size());) {
            const Index child = lr[static_cast<std::size_t>(p)];
            ++p;
            if (visited[static_cast<std::size_t>(child)] !=
                static_cast<int>(k)) {
              visited[static_cast<std::size_t>(child)] = static_cast<int>(k);
              dfs_stack.push_back(child);
              dfs_pos.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          topo.push_back(r);
          dfs_stack.pop_back();
          dfs_pos.pop_back();
        }
      }
    }
    // topo is in post-order = reverse topological; iterate reversed below.

    // ---- numeric: x = L \ A(:,k) over the reach set.
    for (const Index r : topo) x[static_cast<std::size_t>(r)] = 0.0;
    for (std::size_t i = 0; i < ark.size(); ++i) {
      x[static_cast<std::size_t>(ark[i])] =
          csc.vals[static_cast<std::size_t>(k)][i];
    }
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const Index r = *it;
      const Index col = perm_inv_[static_cast<std::size_t>(r)];
      if (col < 0) continue;
      const double xr = x[static_cast<std::size_t>(r)];
      if (xr == 0.0) continue;
      const auto& lr = l_rows_[static_cast<std::size_t>(col)];
      const auto& lv = l_vals_[static_cast<std::size_t>(col)];
      for (std::size_t i = 0; i < lr.size(); ++i) {
        x[static_cast<std::size_t>(lr[i])] -= lv[i] * xr;
      }
    }

    // ---- pivot selection among non-eliminated rows.
    Index pivot_row = -1;
    double best = 0.0;
    double diag = 0.0;
    bool diag_present = false;
    for (const Index r : topo) {
      if (perm_inv_[static_cast<std::size_t>(r)] >= 0) continue;
      const double v = std::abs(x[static_cast<std::size_t>(r)]);
      if (v > best) {
        best = v;
        pivot_row = r;
      }
      if (r == k) {
        diag = v;
        diag_present = true;
      }
    }
    if (pivot_row < 0 || best < floor) {
      failed_col_ = k;
      singular.inc();
      return false;
    }
    if (diag_present && diag >= opts.pivot_threshold * best) {
      pivot_row = k;  // prefer the structural diagonal: less fill
    }
    const double pivot = x[static_cast<std::size_t>(pivot_row)];

    // ---- store U (eliminated rows, permuted indices) and L (scaled).
    auto& ur = u_rows_[static_cast<std::size_t>(k)];
    auto& uv = u_vals_[static_cast<std::size_t>(k)];
    auto& lr = l_rows_[static_cast<std::size_t>(k)];
    auto& lv = l_vals_[static_cast<std::size_t>(k)];
    for (const Index r : topo) {
      const Index col = perm_inv_[static_cast<std::size_t>(r)];
      const double v = x[static_cast<std::size_t>(r)];
      if (col >= 0) {
        if (v != 0.0) {
          ur.push_back(col);
          uv.push_back(v);
        }
      } else if (r != pivot_row && v != 0.0) {
        lr.push_back(r);  // original row index; remapped after factorization
        lv.push_back(v / pivot);
      }
    }
    ur.push_back(k);  // U diagonal last
    uv.push_back(pivot);
    perm_inv_[static_cast<std::size_t>(pivot_row)] = k;
    perm_[static_cast<std::size_t>(k)] = pivot_row;
  }

  // Remap L's original row indices into permuted space.
  for (auto& lr : l_rows_) {
    for (Index& r : lr) r = perm_inv_[static_cast<std::size_t>(r)];
  }
  factored_ = true;
  return true;
}

Vector SparseLu::solve(const Vector& b) const {
  assert(factored_);
  assert(b.size() == n_);
  Vector y(n_);
  for (Index i = 0; i < n_; ++i) {
    const Index orig = perm_[static_cast<std::size_t>(i)];
    y[i] = b[orig] * row_scale_[static_cast<std::size_t>(orig)];
  }
  // Forward: L y = P b (L unit-diagonal, strictly lower in permuted space).
  for (Index j = 0; j < n_; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    const auto& lr = l_rows_[static_cast<std::size_t>(j)];
    const auto& lv = l_vals_[static_cast<std::size_t>(j)];
    for (std::size_t i = 0; i < lr.size(); ++i) y[lr[i]] -= lv[i] * yj;
  }
  // Backward: U x = y (diagonal stored last per column).
  for (Index j = n_ - 1; j >= 0; --j) {
    const auto& ur = u_rows_[static_cast<std::size_t>(j)];
    const auto& uv = u_vals_[static_cast<std::size_t>(j)];
    y[j] /= uv.back();
    const double yj = y[j];
    for (std::size_t i = 0; i + 1 < ur.size(); ++i) y[ur[i]] -= uv[i] * yj;
  }
  return y;
}

std::size_t SparseLu::factor_nonzeros() const {
  std::size_t nnz = 0;
  for (const auto& c : l_vals_) nnz += c.size();
  for (const auto& c : u_vals_) nnz += c.size();
  return nnz;
}

std::optional<Vector> solve_sparse(const TripletAccumulator& a,
                                   const Vector& b) {
  SparseLu lu;
  if (!lu.factor(a)) return std::nullopt;
  return lu.solve(b);
}

}  // namespace fetcam::num
