// Sparse direct LU factorization (Gilbert-Peierls) with threshold partial
// pivoting.
//
// The dense solver is fine for word-slice circuits (a few hundred unknowns),
// but full-array simulations grow as rows x cols and dense LU's O(n^3)
// becomes the wall.  MNA matrices are extremely sparse (a handful of entries
// per device), so a left-looking column factorization with depth-first
// symbolic reachability — the classic Gilbert-Peierls algorithm used by
// SPICE-class solvers (KLU ancestry) — factors them in near-O(nnz * fill)
// time.
//
// Pivoting: threshold partial pivoting per column (pick the diagonal when
// its magnitude is within `pivot_threshold` of the column's largest
// eliminated entry, else the largest).  This preserves sparsity while
// keeping growth bounded — the standard compromise for circuit matrices.
#pragma once

#include <optional>
#include <vector>

#include "numeric/sparse.hpp"

namespace fetcam::num {

struct SparseLuOptions {
  /// Accept the diagonal as pivot when |diag| >= threshold * |col max|.
  double pivot_threshold = 0.1;
  /// Declare singular when a column's best pivot is below this times the
  /// matrix max-abs entry.
  double singular_tol = 1e-14;
};

class SparseLu {
 public:
  /// Factor A (given as summed triplets).  Returns false on (numerical)
  /// singularity; failed_column() then reports the offending column.
  bool factor(const TripletAccumulator& a,
              const SparseLuOptions& opts = {});

  /// Solve A x = b.  Requires factor() == true.
  Vector solve(const Vector& b) const;

  bool factored() const { return factored_; }
  Index failed_column() const { return failed_col_; }
  /// Fill-in diagnostic: nonzeros in L + U.
  std::size_t factor_nonzeros() const;

 private:
  // L and U in compressed sparse column form.  L has unit diagonal
  // (not stored); U's diagonal is stored last in each column.
  Index n_ = 0;
  std::vector<std::vector<Index>> l_rows_, u_rows_;
  std::vector<std::vector<double>> l_vals_, u_vals_;
  /// Row permutation: perm_[k] = original row index acting as row k.
  std::vector<Index> perm_;      // new -> old
  std::vector<Index> perm_inv_;  // old -> new
  std::vector<double> row_scale_;  // equilibration, applied to b in solve()
  bool factored_ = false;
  Index failed_col_ = -1;
};

/// One-shot convenience: returns nullopt on singularity.
std::optional<Vector> solve_sparse(const TripletAccumulator& a,
                                   const Vector& b);

}  // namespace fetcam::num
