// Sparse direct LU factorization (Gilbert-Peierls) with threshold partial
// pivoting and KLU-style factorization reuse.
//
// The dense solver is fine for word-slice circuits (a few hundred unknowns),
// but full-array simulations grow as rows x cols and dense LU's O(n^3)
// becomes the wall.  MNA matrices are extremely sparse (a handful of entries
// per device), so a left-looking column factorization with depth-first
// symbolic reachability — the classic Gilbert-Peierls algorithm used by
// SPICE-class solvers (KLU ancestry) — factors them in near-O(nnz * fill)
// time.
//
// Pivoting: threshold partial pivoting per column (pick the diagonal when
// its magnitude is within `pivot_threshold` of the column's largest
// eliminated entry, else the largest).  This preserves sparsity while
// keeping growth bounded — the standard compromise for circuit matrices.
//
// Factorization reuse: a Newton solve factors the same sparsity pattern
// every iteration, and a transient run factors it every step.  A full
// factor() records its symbolic work — per-column reach sets in topological
// order, the pivot sequence, the flat L/U index arrays — keyed on the
// StampedCsc's pattern_id().  While the pattern is unchanged, factor()
// re-runs only the numeric phase along the recorded structure ("refactor").
// Unlike classic KLU (which trusts recorded pivots and only monitors
// growth), the refactor RE-VERIFIES the threshold pivot choice per column:
// if the numeric values have drifted so that a full pivoting factor would
// pick any different pivot — i.e. a recorded pivot degraded past the
// threshold, or a column went numerically singular — it falls back to the
// full factor.  The verification replays exactly the comparisons the full
// factor performs, so a successful refactor is bit-identical to what a
// fresh full factor of the same matrix would produce; reuse changes cost,
// never results.
//
// Storage is flat CSC (column pointer + row index + value arrays) for L and
// U rather than vector-of-vectors: one allocation each, cache-linear column
// walks, and values rewritable in place by refactor().  All structurally
// reached positions are kept (numerically zero entries are stored, and the
// numeric loops skip zero multipliers), so the recorded structure is an
// upper bound for any value assignment with the same pattern and the
// refactor can never run out of fill slots.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "numeric/sparse.hpp"
#include "numeric/stamped_csc.hpp"

namespace fetcam::num {

struct SparseLuOptions {
  /// Accept the diagonal as pivot when |diag| >= threshold * |col max|.
  double pivot_threshold = 0.1;
  /// Declare singular when a column's best pivot is below this times the
  /// matrix max-abs entry.
  double singular_tol = 1e-14;
  /// Allow the numeric-only refactor path when the pattern matches the
  /// cached symbolic factorization.  Results are identical either way;
  /// disabling forces the full symbolic+numeric factor every call (the
  /// A/B baseline for benchmarks and equivalence tests).
  bool reuse_symbolic = true;
};

class SparseLu {
 public:
  /// Factor A (given as summed triplets).  Returns false on (numerical)
  /// singularity; failed_column() then reports the offending column.
  /// Always takes the full-factor path (the triplet form carries no
  /// pattern identity to key reuse on).
  bool factor(const TripletAccumulator& a, const SparseLuOptions& opts = {});

  /// Factor A given in slot-assembled CSC form.  When `opts.reuse_symbolic`
  /// and `a.pattern_id()` matches the cached symbolic factorization, runs
  /// the numeric-only refactor with per-column pivot re-verification,
  /// transparently falling back to a full factor on pivot degradation.
  bool factor(const StampedCsc& a, const SparseLuOptions& opts = {});

  /// Solve A x = b.  Requires factor() == true.
  Vector solve(const Vector& b) const;
  /// In-place overload: b holds the solution on return.  No allocation
  /// after the first call on a given system size (internal scratch is
  /// reused), which is what the Newton loops use.
  void solve(Vector& b) const;

  bool factored() const { return factored_; }
  Index failed_column() const { return failed_col_; }
  /// Fill-in diagnostic: numerically nonzero entries in L + U.
  std::size_t factor_nonzeros() const;

  /// Pivot order of the last successful factor: perm()[k] = original row
  /// index eliminated at step k.
  const std::vector<Index>& perm() const { return perm_; }
  /// Flat L/U value arrays (unit-diagonal L not stored; U diagonal last
  /// per column) — for the refactor-vs-full-factor equivalence tests.
  const std::vector<double>& l_values() const { return l_vals_; }
  const std::vector<double>& u_values() const { return u_vals_; }

  /// Per-instance reuse accounting (the process-wide obs counters
  /// aggregate the same events across all instances).
  struct Stats {
    std::uint64_t full_factors = 0;   ///< symbolic + numeric factorizations
    std::uint64_t refactors = 0;      ///< numeric-only reuse hits
    std::uint64_t fallbacks = 0;      ///< refactors abandoned for full factor
  };
  const Stats& stats() const { return stats_; }
  /// Smallest |pivot| / |column max| ratio seen by the last successful
  /// refactor (1.0 when no refactor has run); the pivot-growth health
  /// signal behind the fallback decision.
  double last_refactor_min_growth() const { return last_min_growth_; }

 private:
  bool full_factor(const StampedCsc& a, const SparseLuOptions& opts);
  /// Numeric-only pass along the recorded structure.  Returns false when a
  /// re-verified pivot choice differs from the recorded one (fallback).
  bool try_refactor(const StampedCsc& a, const SparseLuOptions& opts);
  void compute_row_scale(const StampedCsc& a);

  Index n_ = 0;
  // L and U in flat compressed sparse column form.  L has unit diagonal
  // (not stored); U's diagonal is stored last in each column.  l_rows_
  // holds ORIGINAL row indices (the space the factorization works in);
  // l_rows_perm_ the permuted copy used by solve().
  std::vector<Index> l_ptr_, u_ptr_;
  std::vector<Index> l_rows_, l_rows_perm_, u_rows_;
  std::vector<double> l_vals_, u_vals_;
  /// Row permutation: perm_[k] = original row index acting as row k.
  std::vector<Index> perm_;      // new -> old
  std::vector<Index> perm_inv_;  // old -> new
  std::vector<double> row_scale_;  // equilibration, applied to b in solve()
  double max_abs_ = 0.0;

  // Recorded symbolic factorization for refactor(): per-column reach sets
  // in DFS post-order (original row indices), keyed on the source
  // pattern's id.
  std::vector<Index> topo_ptr_, topo_;
  std::uint64_t sym_pattern_id_ = 0;

  // Workspaces reused across factor calls (never shrink).
  std::vector<double> x_;
  std::vector<int> visited_;
  std::vector<Index> dfs_stack_, dfs_pos_;
  mutable std::vector<double> solve_scratch_;

  bool factored_ = false;
  Index failed_col_ = -1;
  Stats stats_;
  double last_min_growth_ = 1.0;
};

/// One-shot convenience: returns nullopt on singularity.
std::optional<Vector> solve_sparse(const TripletAccumulator& a,
                                   const Vector& b);

}  // namespace fetcam::num
