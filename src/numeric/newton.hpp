// Damped Newton-Raphson driver shared by the operating-point and transient
// engines.
//
// SPICE-style convergence control: per-component step clamping (voltage
// limiting) keeps the exponential device models from overflowing, and the
// dual residual/step criterion mirrors the classic abstol/reltol/vntol test.
#pragma once

#include <functional>

#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/stamped_csc.hpp"

namespace fetcam::num {

struct NewtonOptions {
  int max_iterations = 200;
  /// Residual (KCL current) tolerance, amperes.
  double residual_tol = 1e-9;
  /// Absolute solution-update tolerance, volts.
  double step_abs_tol = 1e-6;
  /// Relative solution-update tolerance.
  double step_rel_tol = 1e-6;
  /// Per-component clamp on the Newton update (voltage limiting), volts.
  /// Keeps exp() device models inside representable range on early iterations.
  double max_step = 0.5;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
  double step_norm = 0.0;
  /// Set when the Jacobian went singular; reports the offending row for
  /// floating-node diagnostics.
  bool singular = false;
  Index singular_row = -1;
};

/// Callback that fills `jac` and `residual` at the candidate solution `x`.
/// Both are pre-sized and zeroed by the driver; the callee only adds stamps.
/// The driver solves  jac * dx = -residual  and applies the clamped update.
using AssembleFn =
    std::function<void(const Vector& x, Matrix& jac, Vector& residual)>;

/// Run damped Newton on f(x) = 0.  `x` carries the initial guess in and the
/// solution out (best iterate on failure).
NewtonResult solve_newton(const AssembleFn& assemble, Vector& x,
                          const NewtonOptions& opts = {});

/// Sparse-Jacobian variant: the callback stamps into a triplet accumulator
/// (cleared by the driver each iteration) and the linear solves use the
/// Gilbert-Peierls sparse LU.  Same convergence control as the dense path;
/// preferred once the system grows past a few hundred unknowns.
using SparseAssembleFn =
    std::function<void(const Vector& x, TripletAccumulator& jac,
                       Vector& residual)>;
NewtonResult solve_newton_sparse(const SparseAssembleFn& assemble, Vector& x,
                                 const NewtonOptions& opts = {});

/// Sink-based sparse assembly: the callback stamps the Jacobian through a
/// JacobianSink, so the driver chooses the destination — a triplet
/// accumulator when the pattern must be (re)discovered, the slot-resolved
/// flat CSC of StampedCsc on every later iteration.
using SinkAssembleFn =
    std::function<void(const Vector& x, JacobianSink& jac, Vector& residual)>;

/// Reusable solver state for repeated Newton solves against one circuit
/// topology: the slot-assembled Jacobian (pattern + stamp sequence), the
/// SparseLu with its cached symbolic factorization, the iteration buffers,
/// and a triplet scratch for pattern discovery.  Thread one instance through
/// a transient run, a DC sweep, or a Monte-Carlo trial's corner solves and
/// the steady-state per-iteration cost drops to fill(0) + indexed stamp
/// writes + a numeric-only refactor; results are bit-identical to solving
/// each system from scratch.  Not thread-safe: one workspace per thread.
struct SparseNewtonWorkspace {
  StampedCsc jac;
  TripletAccumulator triplets{0};  ///< pattern-discovery scratch
  SparseLu lu;
  Vector residual;
  Vector rhs;
  SparseLuOptions lu_opts;
};

/// Workspace-threaded sparse Newton.  Steady-state iterations are
/// allocation-free and reuse the cached symbolic factorization; a stamp
/// stream that diverges from the recorded pattern (mode switch, netlist
/// change) transparently rebuilds it via triplet assembly.
NewtonResult solve_newton_sparse(const SinkAssembleFn& assemble, Vector& x,
                                 SparseNewtonWorkspace& ws,
                                 const NewtonOptions& opts = {});

}  // namespace fetcam::num
