// Sparse (CSR) matrix support for array-level experiments.
//
// The dense LU path (lu.hpp) handles the word-slice circuits used by the
// paper's evaluation.  For full M x N array simulations the MNA matrix becomes
// large but stays very sparse (each device touches a handful of nodes), so we
// provide a triplet accumulator, CSR conversion, SpMV, and a Jacobi-
// preconditioned BiCGSTAB solver for unsymmetric systems.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "numeric/matrix.hpp"

namespace fetcam::num {

/// Destination for Jacobian entries.  Device stamps write through this
/// interface, so the same stamping code can feed a dense matrix, a triplet
/// accumulator, or the slot-resolved flat CSC of StampedCsc without knowing
/// which solver runs.
class JacobianSink {
 public:
  virtual ~JacobianSink() = default;
  virtual void add(Index r, Index c, double v) = 0;
};

/// Coordinate-format accumulator.  Duplicate (row, col) entries are summed on
/// conversion, matching MNA stamping semantics.
class TripletAccumulator {
 public:
  explicit TripletAccumulator(Index n) : n_(n) {}

  void add(Index r, Index c, double v) {
    assert(r >= 0 && r < n_ && c >= 0 && c < n_);
    rows_.push_back(r);
    cols_.push_back(c);
    vals_.push_back(v);
  }

  Index dim() const { return n_; }
  std::size_t entries() const { return vals_.size(); }
  void clear() {
    rows_.clear();
    cols_.clear();
    vals_.clear();
  }
  /// Re-dimension and clear, keeping the entry capacity (scratch reuse).
  void reset(Index n) {
    n_ = n;
    clear();
  }

  const std::vector<Index>& rows() const { return rows_; }
  const std::vector<Index>& cols() const { return cols_; }
  const std::vector<double>& vals() const { return vals_; }

 private:
  Index n_ = 0;
  std::vector<Index> rows_, cols_;
  std::vector<double> vals_;
};

/// JacobianSink writing into a TripletAccumulator (the pattern-discovery
/// path of the reusable assembly, and the plain sparse-assembly path).
class TripletSink final : public JacobianSink {
 public:
  explicit TripletSink(TripletAccumulator& t) : t_(t) {}
  void add(Index r, Index c, double v) override { t_.add(r, c, v); }

 private:
  TripletAccumulator& t_;
};

/// Compressed sparse row matrix (square).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets, summing duplicates and dropping explicit zeros.
  static CsrMatrix from_triplets(const TripletAccumulator& acc);

  Index dim() const { return n_; }
  std::size_t nonzeros() const { return vals_.size(); }

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// Fetch entry (r, c); zero when structurally absent.  O(log nnz_row).
  double at(Index r, Index c) const;

  /// Diagonal entries (zero where structurally absent).
  Vector diagonal() const;

  const std::vector<Index>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<double>& vals() const { return vals_; }

 private:
  Index n_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<double> vals_;
};

struct BicgstabOptions {
  int max_iter = 2000;
  double rel_tol = 1e-10;   ///< on ||r|| / ||b||
  double abs_tol = 1e-14;
};

struct BicgstabResult {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
};

/// Jacobi-preconditioned BiCGSTAB for unsymmetric sparse systems.
/// `x` holds the initial guess on entry and the solution on success.
BicgstabResult solve_bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                              const BicgstabOptions& opts = {});

}  // namespace fetcam::num
