// Sparse (CSR) matrix support for array-level experiments.
//
// The dense LU path (lu.hpp) handles the word-slice circuits used by the
// paper's evaluation.  For full M x N array simulations the MNA matrix becomes
// large but stays very sparse (each device touches a handful of nodes), so we
// provide a triplet accumulator, CSR conversion, SpMV, and a Jacobi-
// preconditioned BiCGSTAB solver for unsymmetric systems.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "numeric/matrix.hpp"

namespace fetcam::num {

/// Coordinate-format accumulator.  Duplicate (row, col) entries are summed on
/// conversion, matching MNA stamping semantics.
class TripletAccumulator {
 public:
  explicit TripletAccumulator(Index n) : n_(n) {}

  void add(Index r, Index c, double v) {
    assert(r >= 0 && r < n_ && c >= 0 && c < n_);
    rows_.push_back(r);
    cols_.push_back(c);
    vals_.push_back(v);
  }

  Index dim() const { return n_; }
  std::size_t entries() const { return vals_.size(); }
  void clear() {
    rows_.clear();
    cols_.clear();
    vals_.clear();
  }

  const std::vector<Index>& rows() const { return rows_; }
  const std::vector<Index>& cols() const { return cols_; }
  const std::vector<double>& vals() const { return vals_; }

 private:
  Index n_ = 0;
  std::vector<Index> rows_, cols_;
  std::vector<double> vals_;
};

/// Compressed sparse row matrix (square).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets, summing duplicates and dropping explicit zeros.
  static CsrMatrix from_triplets(const TripletAccumulator& acc);

  Index dim() const { return n_; }
  std::size_t nonzeros() const { return vals_.size(); }

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// Fetch entry (r, c); zero when structurally absent.  O(log nnz_row).
  double at(Index r, Index c) const;

  /// Diagonal entries (zero where structurally absent).
  Vector diagonal() const;

  const std::vector<Index>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<double>& vals() const { return vals_; }

 private:
  Index n_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<double> vals_;
};

struct BicgstabOptions {
  int max_iter = 2000;
  double rel_tol = 1e-10;   ///< on ||r|| / ||b||
  double abs_tol = 1e-14;
};

struct BicgstabResult {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
};

/// Jacobi-preconditioned BiCGSTAB for unsymmetric sparse systems.
/// `x` holds the initial guess on entry and the solution on success.
BicgstabResult solve_bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                              const BicgstabOptions& opts = {});

}  // namespace fetcam::num
