#include "numeric/stamped_csc.hpp"

#include <algorithm>
#include <atomic>

namespace fetcam::num {

namespace {

std::uint64_t next_pattern_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void StampedCsc::build(const TripletAccumulator& a) {
  n_ = a.dim();
  const std::size_t nsz = static_cast<std::size_t>(n_);

  // Per-column dedup in first-appearance order, exactly mirroring the old
  // TripletAccumulator -> vector-of-vectors CSC conversion (linear scan per
  // column; MNA columns hold a handful of entries) so downstream
  // factorization sees identical values in an identical order.
  std::vector<std::vector<Index>> col_rows(nsz);
  std::vector<std::vector<double>> col_vals(nsz);
  std::vector<std::vector<std::size_t>> col_seq(nsz);  // triplet k -> local i
  seq_.assign(a.entries(), SeqEntry{});
  for (std::size_t k = 0; k < a.entries(); ++k) {
    const Index c = a.cols()[k];
    const Index r = a.rows()[k];
    auto& cr = col_rows[static_cast<std::size_t>(c)];
    auto& cv = col_vals[static_cast<std::size_t>(c)];
    std::size_t local = cr.size();
    for (std::size_t i = 0; i < cr.size(); ++i) {
      if (cr[i] == r) {
        local = i;
        break;
      }
    }
    if (local == cr.size()) {
      cr.push_back(r);
      cv.push_back(a.vals()[k]);
    } else {
      cv[local] += a.vals()[k];
    }
    seq_[k] = SeqEntry{r, c, local};  // slot fixed up after flattening
  }

  col_ptr_.assign(nsz + 1, 0);
  std::size_t nnz = 0;
  for (std::size_t c = 0; c < nsz; ++c) {
    col_ptr_[c] = static_cast<Index>(nnz);
    nnz += col_rows[c].size();
  }
  col_ptr_[nsz] = static_cast<Index>(nnz);

  rows_.clear();
  rows_.reserve(nnz);
  vals_.clear();
  vals_.reserve(nnz);
  for (std::size_t c = 0; c < nsz; ++c) {
    rows_.insert(rows_.end(), col_rows[c].begin(), col_rows[c].end());
    vals_.insert(vals_.end(), col_vals[c].begin(), col_vals[c].end());
  }
  for (SeqEntry& e : seq_) {
    e.slot += static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(e.col)]);
  }

  cursor_ = seq_.size();  // freshly built == a completed fill
  pattern_id_ = next_pattern_id();
}

void StampedCsc::begin_fill() {
  std::fill(vals_.begin(), vals_.end(), 0.0);
  cursor_ = 0;
}

}  // namespace fetcam::num
