#include "numeric/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fetcam::num {

void Vector::axpy(double alpha, const Vector& w) {
  assert(size() == w.size());
  for (Index i = 0; i < size(); ++i) (*this)[i] += alpha * w[i];
}

double Vector::inf_norm() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Vector::two_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Vector Matrix::multiply(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_);
  for (Index r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    double s = 0.0;
    for (Index c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

double Matrix::inf_norm() const {
  double m = 0.0;
  for (Index r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    double s = 0.0;
    for (Index c = 0; c < cols_; ++c) s += std::abs(row[c]);
    m = std::max(m, s);
  }
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      os << (c + 1 == cols_ ? '\n' : ' ');
    }
  }
  return os.str();
}

}  // namespace fetcam::num
