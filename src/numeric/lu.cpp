#include "numeric/lu.hpp"

#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"

namespace fetcam::num {

bool LuFactorization::factor(const Matrix& a, double singular_tol) {
  static obs::Counter& factors =
      obs::MetricsRegistry::instance().counter("lu.dense.factors");
  static obs::Counter& singular =
      obs::MetricsRegistry::instance().counter("lu.dense.singular");
  factors.inc();
  assert(a.rows() == a.cols());
  const Index n = a.rows();
  lu_ = a;
  perm_.resize(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) perm_[static_cast<std::size_t>(i)] = i;
  factored_ = false;
  failed_row_ = -1;

  // Implicit row equilibration: pivot selection and the singularity test use
  // entries scaled by their row's infinity norm, which keeps conductance
  // matrices spanning many orders of magnitude (pA leakage next to kS
  // supplies) factorable.
  std::vector<double> row_scale(static_cast<std::size_t>(n), 0.0);
  for (Index r = 0; r < n; ++r) {
    double m = 0.0;
    const double* row = lu_.row_data(r);
    for (Index c = 0; c < n; ++c) m = std::max(m, std::abs(row[c]));
    if (m == 0.0) {
      failed_row_ = r;
      singular.inc();
      return false;
    }
    row_scale[static_cast<std::size_t>(r)] = 1.0 / m;
  }

  for (Index k = 0; k < n; ++k) {
    // Find the pivot row by scaled magnitude.
    Index pivot = k;
    double best = std::abs(lu_(k, k)) * row_scale[static_cast<std::size_t>(k)];
    for (Index r = k + 1; r < n; ++r) {
      const double v =
          std::abs(lu_(r, k)) * row_scale[static_cast<std::size_t>(r)];
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < singular_tol) {
      failed_row_ = perm_[static_cast<std::size_t>(pivot)];
      singular.inc();
      return false;
    }
    if (pivot != k) {
      std::swap(perm_[static_cast<std::size_t>(k)], perm_[static_cast<std::size_t>(pivot)]);
      std::swap(row_scale[static_cast<std::size_t>(k)],
                row_scale[static_cast<std::size_t>(pivot)]);
      double* rk = lu_.row_data(k);
      double* rp = lu_.row_data(pivot);
      for (Index c = 0; c < n; ++c) std::swap(rk[c], rp[c]);
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (Index r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) * inv_pivot;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      double* rr = lu_.row_data(r);
      const double* rk = lu_.row_data(k);
      for (Index c = k + 1; c < n; ++c) rr[c] -= m * rk[c];
    }
  }
  factored_ = true;
  return true;
}

Vector LuFactorization::solve(const Vector& b) const {
  assert(factored_);
  const Index n = lu_.rows();
  assert(b.size() == n);
  Vector x(n);
  // Apply permutation and forward-substitute L (unit diagonal).
  for (Index r = 0; r < n; ++r) {
    double s = b[perm_[static_cast<std::size_t>(r)]];
    const double* row = lu_.row_data(r);
    for (Index c = 0; c < r; ++c) s -= row[c] * x[c];
    x[r] = s;
  }
  // Back-substitute U.
  for (Index r = n - 1; r >= 0; --r) {
    const double* row = lu_.row_data(r);
    double s = x[r];
    for (Index c = r + 1; c < n; ++c) s -= row[c] * x[c];
    x[r] = s / row[r];
  }
  return x;
}

void LuFactorization::solve_in_place(Vector& b) const {
  assert(factored_);
  const Index n = lu_.rows();
  assert(b.size() == n);
  // The permutation reads b out of order, so substitute into a scratch
  // vector and copy back; the scratch is reused across calls.
  scratch_.resize(static_cast<std::size_t>(n));
  double* x = scratch_.data();
  for (Index r = 0; r < n; ++r) {
    double s = b[perm_[static_cast<std::size_t>(r)]];
    const double* row = lu_.row_data(r);
    for (Index c = 0; c < r; ++c) s -= row[c] * x[c];
    x[r] = s;
  }
  for (Index r = n - 1; r >= 0; --r) {
    const double* row = lu_.row_data(r);
    double s = x[r];
    for (Index c = r + 1; c < n; ++c) s -= row[c] * x[c];
    x[r] = s / row[r];
  }
  for (Index i = 0; i < n; ++i) b[i] = x[i];
}

std::optional<Vector> solve_dense(const Matrix& a, const Vector& b) {
  LuFactorization lu;
  if (!lu.factor(a)) return std::nullopt;
  return lu.solve(b);
}

}  // namespace fetcam::num
