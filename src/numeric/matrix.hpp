// Dense matrix / vector primitives used by the MNA circuit solver.
//
// The circuit matrices produced by the TCAM netlists in this project are small
// (a few hundred nodes for a 256-bit match-line slice), so a cache-friendly
// row-major dense representation with partial-pivot LU is both simpler and, at
// this size, faster than a general sparse factorization.  A CSR utility layer
// (sparse.hpp) exists for the larger array-level experiments.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace fetcam::num {

using Index = std::ptrdiff_t;

/// Dense column vector of doubles with bounds-checked element access in debug
/// builds.  Semantics are value-like; copies are deep.
class Vector {
 public:
  Vector() = default;
  explicit Vector(Index n, double fill = 0.0) : data_(static_cast<std::size_t>(n), fill) {}

  Index size() const { return static_cast<Index>(data_.size()); }

  double& operator[](Index i) {
    assert(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }
  double operator[](Index i) const {
    assert(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void assign(Index n, double fill) { data_.assign(static_cast<std::size_t>(n), fill); }
  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(Index n) { data_.resize(static_cast<std::size_t>(n), 0.0); }

  /// v += alpha * w (sizes must match).
  void axpy(double alpha, const Vector& w);

  /// Largest absolute entry; 0 for the empty vector.
  double inf_norm() const;

  /// Euclidean norm.
  double two_norm() const;

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::vector<double> data_;
};

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), fill) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  double& operator()(Index r, Index c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  double operator()(Index r, Index c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Zero all entries, keeping the shape.  Used once per Newton iteration to
  /// rebuild the Jacobian in place without reallocating.
  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  void resize(Index rows, Index cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows * cols), 0.0);
  }

  /// y = A * x.
  Vector multiply(const Vector& x) const;

  /// Maximum absolute row sum (induced infinity norm).
  double inf_norm() const;

  double* row_data(Index r) { return data_.data() + static_cast<std::size_t>(r * cols_); }
  const double* row_data(Index r) const {
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }

  std::string to_string(int precision = 4) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

}  // namespace fetcam::num
