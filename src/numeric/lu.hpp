// Partial-pivot LU factorization for the MNA system solves.
//
// MNA matrices are unsymmetric (voltage-source branch rows) and can be badly
// scaled (conductances spanning 1e-12 .. 1e3 S), so row partial pivoting is
// required; plain diagonal pivoting fails on the zero diagonal entries that
// ideal voltage sources introduce.
#pragma once

#include <optional>
#include <vector>

#include "numeric/matrix.hpp"

namespace fetcam::num {

/// In-place LU factorization with row partial pivoting and forward/back solve.
///
/// Usage:
///   LuFactorization lu;
///   if (!lu.factor(a)) { ... singular ... }
///   Vector x = lu.solve(b);
class LuFactorization {
 public:
  /// Factor a copy of `a`.  Returns false when a pivot falls below
  /// `singular_tol` times the matrix infinity norm, signalling a singular (or
  /// numerically singular) system — typically a floating circuit node.
  bool factor(const Matrix& a, double singular_tol = 1e-14);

  /// Solve L U x = P b for x.  Requires a successful factor() call.
  Vector solve(const Vector& b) const;
  /// In-place overload: b holds the solution on return.  Allocation-free
  /// after the first call on a given system size (internal scratch), which
  /// is what the Newton loop uses per iteration.
  void solve_in_place(Vector& b) const;

  /// Row index (in the original matrix) of the pivot that broke factorization,
  /// for diagnosing floating nodes.  Only meaningful after factor() == false.
  Index failed_row() const { return failed_row_; }

  bool factored() const { return factored_; }

 private:
  Matrix lu_;
  std::vector<Index> perm_;
  mutable std::vector<double> scratch_;  // solve_in_place working vector
  Index failed_row_ = -1;
  bool factored_ = false;
};

/// Convenience one-shot dense solve.  Returns std::nullopt on singularity.
std::optional<Vector> solve_dense(const Matrix& a, const Vector& b);

}  // namespace fetcam::num
