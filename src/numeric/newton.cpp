#include "numeric/newton.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse_lu.hpp"

namespace fetcam::num {

NewtonResult solve_newton(const AssembleFn& assemble, Vector& x,
                          const NewtonOptions& opts) {
  NewtonResult res;
  const Index n = x.size();
  Matrix jac(n, n);
  Vector residual(n);
  LuFactorization lu;

  for (int it = 0; it < opts.max_iterations; ++it) {
    jac.set_zero();
    residual.fill(0.0);
    assemble(x, jac, residual);

    res.iterations = it + 1;
    res.residual_norm = residual.inf_norm();

    if (!lu.factor(jac)) {
      res.singular = true;
      res.singular_row = lu.failed_row();
      return res;
    }
    // Solve J dx = -f.
    Vector rhs(n);
    for (Index i = 0; i < n; ++i) rhs[i] = -residual[i];
    Vector dx = lu.solve(rhs);

    // Voltage limiting: clamp each component.
    for (Index i = 0; i < n; ++i) {
      dx[i] = std::clamp(dx[i], -opts.max_step, opts.max_step);
    }
    res.step_norm = dx.inf_norm();
    for (Index i = 0; i < n; ++i) x[i] += dx[i];

    bool step_ok = true;
    for (Index i = 0; i < n; ++i) {
      const double tol = opts.step_abs_tol + opts.step_rel_tol * std::abs(x[i]);
      if (std::abs(dx[i]) > tol) {
        step_ok = false;
        break;
      }
    }
    if (step_ok && res.residual_norm < opts.residual_tol) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

NewtonResult solve_newton_sparse(const SparseAssembleFn& assemble, Vector& x,
                                 const NewtonOptions& opts) {
  NewtonResult res;
  const Index n = x.size();
  TripletAccumulator jac(n);
  Vector residual(n);
  SparseLu lu;

  for (int it = 0; it < opts.max_iterations; ++it) {
    jac.clear();
    residual.fill(0.0);
    assemble(x, jac, residual);

    res.iterations = it + 1;
    res.residual_norm = residual.inf_norm();

    if (!lu.factor(jac)) {
      res.singular = true;
      res.singular_row = lu.failed_column();
      return res;
    }
    Vector rhs(n);
    for (Index i = 0; i < n; ++i) rhs[i] = -residual[i];
    Vector dx = lu.solve(rhs);

    for (Index i = 0; i < n; ++i) {
      dx[i] = std::clamp(dx[i], -opts.max_step, opts.max_step);
    }
    res.step_norm = dx.inf_norm();
    for (Index i = 0; i < n; ++i) x[i] += dx[i];

    bool step_ok = true;
    for (Index i = 0; i < n; ++i) {
      const double tol = opts.step_abs_tol + opts.step_rel_tol * std::abs(x[i]);
      if (std::abs(dx[i]) > tol) {
        step_ok = false;
        break;
      }
    }
    if (step_ok && res.residual_norm < opts.residual_tol) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

}  // namespace fetcam::num
