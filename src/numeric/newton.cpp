#include "numeric/newton.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse_lu.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fetcam::num {

namespace {

/// Newton/LU solver-health metrics, registered once per process.  The
/// iteration histogram feeds the "where does solve time go" analysis; the
/// factor/solve timing histograms are the evidence base for the dense vs
/// sparse crossover policy (SolverKind::kAuto).
struct NewtonMetrics {
  obs::Counter& solves;
  obs::Counter& nonconverged;
  obs::Counter& singular;
  obs::Histogram& iterations;
  obs::Histogram& factor_us;
  obs::Histogram& solve_us;

  static NewtonMetrics& dense() {
    auto& reg = obs::MetricsRegistry::instance();
    static NewtonMetrics m{
        reg.counter("newton.dense.solves"),
        reg.counter("newton.dense.nonconverged"),
        reg.counter("newton.dense.singular"),
        reg.histogram("newton.dense.iterations", iteration_bounds()),
        reg.histogram("lu.dense.factor_us", time_bounds()),
        reg.histogram("lu.dense.solve_us", time_bounds()),
    };
    return m;
  }

  static NewtonMetrics& sparse() {
    auto& reg = obs::MetricsRegistry::instance();
    static NewtonMetrics m{
        reg.counter("newton.sparse.solves"),
        reg.counter("newton.sparse.nonconverged"),
        reg.counter("newton.sparse.singular"),
        reg.histogram("newton.sparse.iterations", iteration_bounds()),
        reg.histogram("lu.sparse.factor_us", time_bounds()),
        reg.histogram("lu.sparse.solve_us", time_bounds()),
    };
    return m;
  }

  static std::vector<double> iteration_bounds() {
    return {1, 2, 3, 5, 8, 12, 20, 50, 100, 200};
  }
  static std::vector<double> time_bounds() {
    // 1 us .. ~16 ms, x2 per bucket.
    return obs::exponential_bounds(1.0, 2.0, 15);
  }

  void record_result(const NewtonResult& res) {
    solves.add();
    iterations.observe(res.iterations);
    if (res.singular) singular.add();
    if (!res.converged) nonconverged.add();
  }
};

}  // namespace

NewtonResult solve_newton(const AssembleFn& assemble, Vector& x,
                          const NewtonOptions& opts) {
  const obs::ScopedSpan span("newton.dense", "numeric");
  const bool obs_on = obs::metrics_on();
  NewtonResult res;
  const Index n = x.size();
  Matrix jac(n, n);
  Vector residual(n);
  LuFactorization lu;

  for (int it = 0; it < opts.max_iterations; ++it) {
    jac.set_zero();
    residual.fill(0.0);
    assemble(x, jac, residual);

    res.iterations = it + 1;
    res.residual_norm = residual.inf_norm();

    const double t_factor = obs_on ? obs::now_us() : 0.0;
    const bool factored = lu.factor(jac);
    if (obs_on) {
      NewtonMetrics::dense().factor_us.observe(obs::now_us() - t_factor);
    }
    if (!factored) {
      res.singular = true;
      res.singular_row = lu.failed_row();
      if (obs_on) NewtonMetrics::dense().record_result(res);
      return res;
    }
    // Solve J dx = -f.
    Vector rhs(n);
    for (Index i = 0; i < n; ++i) rhs[i] = -residual[i];
    const double t_solve = obs_on ? obs::now_us() : 0.0;
    Vector dx = lu.solve(rhs);
    if (obs_on) {
      NewtonMetrics::dense().solve_us.observe(obs::now_us() - t_solve);
    }

    // Voltage limiting: clamp each component.
    for (Index i = 0; i < n; ++i) {
      dx[i] = std::clamp(dx[i], -opts.max_step, opts.max_step);
    }
    res.step_norm = dx.inf_norm();
    for (Index i = 0; i < n; ++i) x[i] += dx[i];

    bool step_ok = true;
    for (Index i = 0; i < n; ++i) {
      const double tol = opts.step_abs_tol + opts.step_rel_tol * std::abs(x[i]);
      if (std::abs(dx[i]) > tol) {
        step_ok = false;
        break;
      }
    }
    if (step_ok && res.residual_norm < opts.residual_tol) {
      res.converged = true;
      break;
    }
  }
  if (obs_on) NewtonMetrics::dense().record_result(res);
  return res;
}

NewtonResult solve_newton_sparse(const SparseAssembleFn& assemble, Vector& x,
                                 const NewtonOptions& opts) {
  const obs::ScopedSpan span("newton.sparse", "numeric");
  const bool obs_on = obs::metrics_on();
  NewtonResult res;
  const Index n = x.size();
  TripletAccumulator jac(n);
  Vector residual(n);
  SparseLu lu;

  for (int it = 0; it < opts.max_iterations; ++it) {
    jac.clear();
    residual.fill(0.0);
    assemble(x, jac, residual);

    res.iterations = it + 1;
    res.residual_norm = residual.inf_norm();

    const double t_factor = obs_on ? obs::now_us() : 0.0;
    const bool factored = lu.factor(jac);
    if (obs_on) {
      NewtonMetrics::sparse().factor_us.observe(obs::now_us() - t_factor);
    }
    if (!factored) {
      res.singular = true;
      res.singular_row = lu.failed_column();
      if (obs_on) NewtonMetrics::sparse().record_result(res);
      return res;
    }
    Vector rhs(n);
    for (Index i = 0; i < n; ++i) rhs[i] = -residual[i];
    const double t_solve = obs_on ? obs::now_us() : 0.0;
    Vector dx = lu.solve(rhs);
    if (obs_on) {
      NewtonMetrics::sparse().solve_us.observe(obs::now_us() - t_solve);
    }

    for (Index i = 0; i < n; ++i) {
      dx[i] = std::clamp(dx[i], -opts.max_step, opts.max_step);
    }
    res.step_norm = dx.inf_norm();
    for (Index i = 0; i < n; ++i) x[i] += dx[i];

    bool step_ok = true;
    for (Index i = 0; i < n; ++i) {
      const double tol = opts.step_abs_tol + opts.step_rel_tol * std::abs(x[i]);
      if (std::abs(dx[i]) > tol) {
        step_ok = false;
        break;
      }
    }
    if (step_ok && res.residual_norm < opts.residual_tol) {
      res.converged = true;
      break;
    }
  }
  if (obs_on) NewtonMetrics::sparse().record_result(res);
  return res;
}

}  // namespace fetcam::num
