#include "numeric/newton.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse_lu.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fetcam::num {

namespace {

/// Newton/LU solver-health metrics, registered once per process.  The
/// iteration histogram feeds the "where does solve time go" analysis; the
/// factor/solve timing histograms are the evidence base for the dense vs
/// sparse crossover policy (SolverKind::kAuto).
struct NewtonMetrics {
  obs::Counter& solves;
  obs::Counter& nonconverged;
  obs::Counter& singular;
  obs::Histogram& iterations;
  obs::Histogram& factor_us;
  obs::Histogram& solve_us;

  static NewtonMetrics& dense() {
    auto& reg = obs::MetricsRegistry::instance();
    static NewtonMetrics m{
        reg.counter("newton.dense.solves"),
        reg.counter("newton.dense.nonconverged"),
        reg.counter("newton.dense.singular"),
        reg.histogram("newton.dense.iterations", iteration_bounds()),
        reg.histogram("lu.dense.factor_us", time_bounds()),
        reg.histogram("lu.dense.solve_us", time_bounds()),
    };
    return m;
  }

  static NewtonMetrics& sparse() {
    auto& reg = obs::MetricsRegistry::instance();
    static NewtonMetrics m{
        reg.counter("newton.sparse.solves"),
        reg.counter("newton.sparse.nonconverged"),
        reg.counter("newton.sparse.singular"),
        reg.histogram("newton.sparse.iterations", iteration_bounds()),
        reg.histogram("lu.sparse.factor_us", time_bounds()),
        reg.histogram("lu.sparse.solve_us", time_bounds()),
    };
    return m;
  }

  static std::vector<double> iteration_bounds() {
    return {1, 2, 3, 5, 8, 12, 20, 50, 100, 200};
  }
  static std::vector<double> time_bounds() {
    // 1 us .. ~16 ms, x2 per bucket.
    return obs::exponential_bounds(1.0, 2.0, 15);
  }

  void record_result(const NewtonResult& res) {
    solves.add();
    iterations.observe(res.iterations);
    if (res.singular) singular.add();
    if (!res.converged) nonconverged.add();
  }
};

}  // namespace

NewtonResult solve_newton(const AssembleFn& assemble, Vector& x,
                          const NewtonOptions& opts) {
  const obs::ScopedSpan span("newton.dense", "numeric");
  const bool obs_on = obs::metrics_on();
  NewtonResult res;
  const Index n = x.size();
  Matrix jac(n, n);
  Vector residual(n);
  Vector dx(n);
  LuFactorization lu;

  for (int it = 0; it < opts.max_iterations; ++it) {
    jac.set_zero();
    residual.fill(0.0);
    assemble(x, jac, residual);

    res.iterations = it + 1;
    res.residual_norm = residual.inf_norm();

    const double t_factor = obs_on ? obs::now_us() : 0.0;
    const bool factored = lu.factor(jac);
    if (obs_on) {
      NewtonMetrics::dense().factor_us.observe(obs::now_us() - t_factor);
    }
    if (!factored) {
      res.singular = true;
      res.singular_row = lu.failed_row();
      if (obs_on) NewtonMetrics::dense().record_result(res);
      return res;
    }
    // Solve J dx = -f, reusing the dx buffer across iterations.
    for (Index i = 0; i < n; ++i) dx[i] = -residual[i];
    const double t_solve = obs_on ? obs::now_us() : 0.0;
    lu.solve_in_place(dx);
    if (obs_on) {
      NewtonMetrics::dense().solve_us.observe(obs::now_us() - t_solve);
    }

    // Voltage limiting: clamp each component.
    for (Index i = 0; i < n; ++i) {
      dx[i] = std::clamp(dx[i], -opts.max_step, opts.max_step);
    }
    res.step_norm = dx.inf_norm();
    for (Index i = 0; i < n; ++i) x[i] += dx[i];

    bool step_ok = true;
    for (Index i = 0; i < n; ++i) {
      const double tol = opts.step_abs_tol + opts.step_rel_tol * std::abs(x[i]);
      if (std::abs(dx[i]) > tol) {
        step_ok = false;
        break;
      }
    }
    if (step_ok && res.residual_norm < opts.residual_tol) {
      res.converged = true;
      break;
    }
  }
  if (obs_on) NewtonMetrics::dense().record_result(res);
  return res;
}

NewtonResult solve_newton_sparse(const SinkAssembleFn& assemble, Vector& x,
                                 SparseNewtonWorkspace& ws,
                                 const NewtonOptions& opts) {
  const obs::ScopedSpan span("newton.sparse", "numeric");
  const bool obs_on = obs::metrics_on();
  static obs::Counter& rebuilds =
      obs::MetricsRegistry::instance().counter("newton.sparse.pattern_rebuilds");
  NewtonResult res;
  const Index n = x.size();
  ws.residual.resize(n);
  ws.rhs.resize(n);

  for (int it = 0; it < opts.max_iterations; ++it) {
    // Assembly: replay the recorded stamp sequence into the flat value
    // array when a pattern is cached; any divergence (first call, mode
    // switch, topology change) falls back to triplet assembly and rebuilds
    // the pattern + stamp-slot map.
    bool assembled = false;
    if (ws.jac.has_pattern() && ws.jac.dim() == n) {
      ws.residual.fill(0.0);
      ws.jac.begin_fill();
      StampedCscSink sink(ws.jac);
      assemble(x, sink, ws.residual);
      assembled = sink.ok() && ws.jac.end_fill();
    }
    if (!assembled) {
      rebuilds.inc();
      ws.residual.fill(0.0);
      ws.triplets.reset(n);
      TripletSink sink(ws.triplets);
      assemble(x, sink, ws.residual);
      ws.jac.build(ws.triplets);
    }

    res.iterations = it + 1;
    res.residual_norm = ws.residual.inf_norm();

    const double t_factor = obs_on ? obs::now_us() : 0.0;
    const bool factored = ws.lu.factor(ws.jac, ws.lu_opts);
    if (obs_on) {
      NewtonMetrics::sparse().factor_us.observe(obs::now_us() - t_factor);
    }
    if (!factored) {
      res.singular = true;
      res.singular_row = ws.lu.failed_column();
      if (obs_on) NewtonMetrics::sparse().record_result(res);
      return res;
    }
    Vector& dx = ws.rhs;
    for (Index i = 0; i < n; ++i) dx[i] = -ws.residual[i];
    const double t_solve = obs_on ? obs::now_us() : 0.0;
    ws.lu.solve(dx);
    if (obs_on) {
      NewtonMetrics::sparse().solve_us.observe(obs::now_us() - t_solve);
    }

    for (Index i = 0; i < n; ++i) {
      dx[i] = std::clamp(dx[i], -opts.max_step, opts.max_step);
    }
    res.step_norm = dx.inf_norm();
    for (Index i = 0; i < n; ++i) x[i] += dx[i];

    bool step_ok = true;
    for (Index i = 0; i < n; ++i) {
      const double tol = opts.step_abs_tol + opts.step_rel_tol * std::abs(x[i]);
      if (std::abs(dx[i]) > tol) {
        step_ok = false;
        break;
      }
    }
    if (step_ok && res.residual_norm < opts.residual_tol) {
      res.converged = true;
      break;
    }
  }
  if (obs_on) NewtonMetrics::sparse().record_result(res);
  return res;
}

NewtonResult solve_newton_sparse(const SparseAssembleFn& assemble, Vector& x,
                                 const NewtonOptions& opts) {
  // Legacy triplet-callback entry point: adapt to the sink driver by
  // stamping into a scratch accumulator and replaying it in call order
  // (preserving duplicate-summation order, hence bit-identical results).
  SparseNewtonWorkspace ws;
  TripletAccumulator scratch(x.size());
  const SinkAssembleFn adapter = [&](const Vector& xc, JacobianSink& sink,
                                     Vector& residual) {
    scratch.reset(xc.size());
    assemble(xc, scratch, residual);
    for (std::size_t k = 0; k < scratch.entries(); ++k) {
      sink.add(scratch.rows()[k], scratch.cols()[k], scratch.vals()[k]);
    }
  };
  return solve_newton_sparse(adapter, x, ws, opts);
}

}  // namespace fetcam::num
