#include "dse/pareto.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace fetcam::dse {

bool dominates(const ObjVec& a, const ObjVec& b) {
  bool strict = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (!std::isfinite(a[k])) return false;
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strict = true;
  }
  return strict;
}

std::vector<std::size_t> pareto_front(const std::vector<ObjVec>& objs) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < objs.size(); ++i) {
    bool finite = true;
    for (double v : objs[i]) {
      if (!std::isfinite(v)) finite = false;
    }
    if (!finite) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < objs.size() && !dominated; ++j) {
      if (j == i) continue;
      if (dominates(objs[j], objs[i])) dominated = true;
      // Duplicate tie rule: the earliest copy represents the vector.
      if (j < i && objs[j] == objs[i]) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

ObjVec reference_point(const std::vector<ObjVec>& objs) {
  ObjVec ref{0.0, 0.0, 0.0, 0.0};
  for (const ObjVec& o : objs) {
    bool finite = true;
    for (double v : o) {
      if (!std::isfinite(v)) finite = false;
    }
    if (!finite) continue;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      ref[k] = std::max(ref[k], o[k]);
    }
  }
  for (double& v : ref) v *= 1.1;
  return ref;
}

double dominated_volume(const std::vector<ObjVec>& frontier, const ObjVec& ref,
                        std::size_t n_samples) {
  if (frontier.empty() || n_samples == 0) return 0.0;
  for (double v : ref) {
    if (!(v > 0.0) || !std::isfinite(v)) return 0.0;
  }
  static constexpr std::uint64_t kBases[] = {2, 3, 5, 7};
  std::size_t hit = 0;
  for (std::size_t s = 0; s < n_samples; ++s) {
    ObjVec x;
    for (std::size_t k = 0; k < 4; ++k) {
      x[k] = util::radical_inverse(s + 1, kBases[k]) * ref[k];
    }
    for (const ObjVec& f : frontier) {
      bool dom = true;
      for (std::size_t k = 0; k < 4; ++k) {
        if (f[k] > x[k]) dom = false;
      }
      if (dom) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(n_samples);
}

}  // namespace fetcam::dse
