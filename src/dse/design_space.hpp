// Design-space description for the DSE sweep: which knobs exist, which
// values each may take, and how a (possibly huge) joint space is turned
// into a deterministic candidate list.
//
// Two enumeration modes:
//  * grid_points() — the full cartesian product in a fixed canonical order
//    (last axis fastest), for exhaustive sweeps;
//  * sample_points(n, seed) — a seeded low-discrepancy subset: a Halton
//    point in the unit hypercube picks one value per axis, with a
//    splitmix64-derived Cranley–Patterson rotation so different seeds give
//    different (but individually deterministic) designs.  Duplicates are
//    collapsed, so the returned list may be shorter than n.
//
// Both orders depend only on (space, n, seed) — never on thread count —
// which is the foundation of the sweep's bit-identical parallelism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/area_model.hpp"
#include "tcam/word.hpp"

namespace fetcam::dse {

/// One candidate design: a cell flavour plus every tuning/geometry knob
/// the evaluation harness understands.
struct DesignPoint {
  arch::TcamDesign design = arch::TcamDesign::k1p5DgFe;
  double t_fe_scale = 1.0;       ///< ferroelectric thickness scale
  double vdd = 0.8;              ///< array supply, volts
  double control_w_scale = 1.0;  ///< TP/TN width scale (1.5T1Fe divider)
  double sense_trim_v = 0.0;     ///< sense-threshold trim, volts
  int rows = 16;                 ///< rows per mat
  int word_bits = 8;             ///< physical cells per word
  int mats = 1;                  ///< parallel mats (match-OR tree depth)
  int digit_bits = 1;            ///< d-bit digits per cell, in {1, 2, 3}

  /// Stored bits per mat row: cells x digit bits.
  int bits_per_word() const { return word_bits * digit_bits; }
  /// The device-tuning bundle the harnesses consume.
  tcam::DeviceTuning tuning() const {
    return {t_fe_scale, control_w_scale, sense_trim_v};
  }
  bool operator==(const DesignPoint& o) const;
};

/// Short stable name for a point's design ("2sg", "1p5dg", ...), used in
/// reports and the space-file format.
std::string flavor_name(arch::TcamDesign d);
/// Inverse of flavor_name; throws std::invalid_argument on unknown names.
arch::TcamDesign flavor_from_name(const std::string& name);

/// Axis-aligned candidate space: the sweep enumerates the cartesian
/// product of per-knob value lists.  Empty axes are invalid.
struct DesignSpace {
  std::vector<arch::TcamDesign> designs = {arch::TcamDesign::k2SgFefet,
                                           arch::TcamDesign::k1p5DgFe};
  std::vector<double> t_fe_scale = {1.0};
  std::vector<double> vdd = {0.8};
  std::vector<double> control_w_scale = {1.0};
  std::vector<double> sense_trim_v = {0.0};
  std::vector<int> rows = {16};
  std::vector<int> word_bits = {8};
  std::vector<int> mats = {1};
  std::vector<int> digit_bits = {1};

  /// Throws std::invalid_argument naming the offending axis when any axis
  /// is empty or holds an out-of-range value (digit_bits outside [1,3],
  /// non-positive geometry, non-FeFET design, ...).
  void validate() const;

  std::size_t grid_size() const;
  /// Point at canonical grid index (last axis fastest).  idx < grid_size().
  DesignPoint grid_point(std::size_t idx) const;
  std::vector<DesignPoint> grid_points() const;

  /// Seeded low-discrepancy subset of at most n distinct points.
  std::vector<DesignPoint> sample_points(std::size_t n,
                                         std::uint64_t seed) const;

  /// Normalized feature vector of a point for the surrogate: one entry per
  /// axis, each mapped to [0, 1] over the axis' value range (0.5 when the
  /// axis is degenerate).  The design axis contributes two features
  /// (cell family, gate flavour).
  std::vector<double> features(const DesignPoint& p) const;
  std::vector<std::string> feature_names() const;
};

/// The checked-in default space: both cell families at paper-adjacent
/// knob ranges, small enough for CI (see docs/DSE.md).
DesignSpace default_space();

/// Parse the `key = v1 v2 ...` space-file format (docs/DSE.md).  Unknown
/// keys, bad numbers, or a failed validate() throw std::invalid_argument.
DesignSpace parse_space(const std::string& text);
DesignSpace load_space_file(const std::string& path);

}  // namespace fetcam::dse
