// Report rendering for the DSE sweep: the fetcam.dse.v1 JSON document
// (what bench_dse writes to BENCH_dse.json and tools/check_dse_frontier.py
// gates) plus a human-readable text rendering for the CLI.
//
// The JSON carries one or two arms: the exact arm is always present; the
// surrogate arm (and the frontier-recall number that needs both) appears
// when pruning was enabled.  Schema documented in docs/DSE.md.
#pragma once

#include <string>
#include <vector>

#include "dse/driver.hpp"

namespace fetcam::dse {

/// The paper's nominal operating points inside the sweep's geometry: every
/// tuning knob at identity for each design family in the space.  The check
/// script asserts no frontier point dominates these beyond a configured
/// relative margin (the reproduction should not claim to beat the paper's
/// own design by a wide margin inside its own model).
struct PaperPointCheck {
  DesignPoint point;
  PointMetrics metrics;
  /// max over dominating simulated points of the min relative (to the
  /// reference box) improvement across objectives; 0 when undominated.
  double domination_depth = 0.0;
};

std::vector<PaperPointCheck> check_paper_points(const DseOptions& opts,
                                                const DseResult& exact);

/// Render the fetcam.dse.v1 document.  `pruned` may be null (surrogate
/// disabled); `recall` is ignored then.
std::string render_json(const DseOptions& opts, const DseResult& exact,
                        const DseResult* pruned, double recall,
                        const std::vector<PaperPointCheck>& paper,
                        int threads);

std::string render_text(const DseOptions& opts, const DseResult& exact,
                        const DseResult* pruned, double recall,
                        const std::vector<PaperPointCheck>& paper);

}  // namespace fetcam::dse
