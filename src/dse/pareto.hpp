// Exact non-dominated sorting and a deterministic dominated-hypervolume
// estimate for the 4-objective DSE output.
//
// All objectives are minimized.  The frontier routine is the plain O(n^2)
// pairwise scan — frontier inputs here are a few hundred points at most,
// far below where divide-and-conquer wins — with a canonical tie rule:
// among duplicated objective vectors only the first (lowest index) enters
// the frontier, so the result is a deterministic function of input order.
//
// The hypervolume (volume of the region dominated by the frontier inside
// the reference box, normalized to the box volume) is estimated by
// quasi-Monte-Carlo with the Halton sequence — no RNG state, so the
// number is reproducible to the bit across runs and thread counts.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace fetcam::dse {

using ObjVec = std::array<double, 4>;

/// True when a is at least as good as b in every objective and strictly
/// better in at least one.  Any NaN/inf in `a` never dominates.
bool dominates(const ObjVec& a, const ObjVec& b);

/// Indices of the non-dominated points, ascending.  Points with
/// non-finite objectives never qualify.
std::vector<std::size_t> pareto_front(const std::vector<ObjVec>& objs);

/// Fraction of the [0, ref] box dominated by the frontier, estimated with
/// `n_samples` Halton points.  Returns 0 for an empty frontier or a
/// degenerate box.
double dominated_volume(const std::vector<ObjVec>& frontier,
                        const ObjVec& ref, std::size_t n_samples = 4096);

/// Canonical reference point: 1.1x the per-objective maximum over the
/// finite points (so every finite point dominates some volume).
ObjVec reference_point(const std::vector<ObjVec>& objs);

}  // namespace fetcam::dse
