// Cheap incremental surrogate for the DSE pruning loop: one regularized
// quadratic (diagonal squares, no cross terms) per objective over the
// space's normalized feature vector.
//
// Basis: [1, x_1..x_k, x_1^2..x_k^2, x_1*x_2..x_1*x_k] — 3k terms (the
// cross terms pair every feature with the leading cell-family flag, whose
// slopes differ most between families), small enough to refit
// from scratch after every batch with a dense normal-equation solve
// (num::LuFactorization); the ridge term keeps the system well-posed even
// before the sample count reaches the basis size.  Positive objectives
// (latency, energy, area) are fit in log space, where the circuit
// responses are far closer to quadratic; the yield-loss objective, which
// can be exactly 0, is fit linearly.
//
// The pruning decision uses `optimistic()`: prediction minus k_margin
// training RMSEs per objective.  Only a point whose OPTIMISTIC vector is
// still dominated by an actually-evaluated point is skipped, so the
// surrogate has to be wrong by more than k_margin sigma before a frontier
// point can be lost — and the driver's validation arm measures exactly
// that tail.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "dse/pareto.hpp"

namespace fetcam::dse {

class QuadraticSurrogate {
 public:
  /// `n_features` is the space's feature-vector length; `ridge` the L2
  /// penalty on all non-constant weights.
  explicit QuadraticSurrogate(std::size_t n_features, double ridge = 1e-3);

  void add_sample(const std::vector<double>& x, const ObjVec& y);
  std::size_t samples() const { return xs_.size(); }

  /// Refit from all samples.  Returns false (and keeps ready() false)
  /// until at least `min_samples_to_fit()` samples are in.
  bool fit();
  bool ready() const { return ready_; }
  /// Fitting with fewer samples than basis terms is pure ridge
  /// extrapolation; require a modest multiple before trusting it.
  std::size_t min_samples_to_fit() const { return basis_size() + 2; }

  ObjVec predict(const std::vector<double>& x) const;
  /// predict() minus k_margin effective sigmas per objective, applied in
  /// fit space (multiplicative for the log-fit objectives, additive for
  /// yield loss) and clamped at >= 0, every objective's physical floor.
  /// The effective sigma is the training RMSE floored at 5 % of the
  /// observed fit-space spread.
  ObjVec optimistic(const std::vector<double>& x, double k_margin) const;
  /// Training RMSE per objective, in FIT space: relative (log) error for
  /// latency/energy/area, absolute for yield loss.
  ObjVec rmse() const { return rmse_; }

  /// |linear weight| per (feature, objective) — the first-order knob
  /// sensitivity the report prints.  Valid only when ready().
  std::vector<ObjVec> linear_sensitivity() const;

 private:
  /// [1, x_i, x_i^2, x_0*x_i] — diagonal quadratic plus cross terms
  /// against the leading (cell-family) feature.
  std::size_t basis_size() const { return 3 * n_features_; }
  std::vector<double> basis(const std::vector<double>& x) const;

  std::size_t n_features_;
  double ridge_;
  bool ready_ = false;
  std::vector<std::vector<double>> xs_;
  std::vector<ObjVec> ys_;
  /// weights_[obj][term]; log-space for objectives 0..2.
  std::array<std::vector<double>, 4> weights_{};
  ObjVec rmse_{};
  ObjVec spread_{};  ///< per-objective fit-space training max - min
};

}  // namespace fetcam::dse
