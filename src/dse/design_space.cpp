#include "dse/design_space.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace fetcam::dse {

bool DesignPoint::operator==(const DesignPoint& o) const {
  return design == o.design && t_fe_scale == o.t_fe_scale && vdd == o.vdd &&
         control_w_scale == o.control_w_scale &&
         sense_trim_v == o.sense_trim_v && rows == o.rows &&
         word_bits == o.word_bits && mats == o.mats &&
         digit_bits == o.digit_bits;
}

std::string flavor_name(arch::TcamDesign d) {
  switch (d) {
    case arch::TcamDesign::kCmos16T:
      return "16t";
    case arch::TcamDesign::k2SgFefet:
      return "2sg";
    case arch::TcamDesign::k2DgFefet:
      return "2dg";
    case arch::TcamDesign::k1p5SgFe:
      return "1p5sg";
    case arch::TcamDesign::k1p5DgFe:
      return "1p5dg";
  }
  return "?";
}

arch::TcamDesign flavor_from_name(const std::string& name) {
  if (name == "2sg") return arch::TcamDesign::k2SgFefet;
  if (name == "2dg") return arch::TcamDesign::k2DgFefet;
  if (name == "1p5sg") return arch::TcamDesign::k1p5SgFe;
  if (name == "1p5dg") return arch::TcamDesign::k1p5DgFe;
  if (name == "16t") return arch::TcamDesign::kCmos16T;
  throw std::invalid_argument("unknown design flavour: " + name);
}

namespace {

[[noreturn]] void bad_axis(const std::string& axis, const std::string& why) {
  throw std::invalid_argument("design space axis '" + axis + "': " + why);
}

template <typename T>
void check_axis(const std::string& name, const std::vector<T>& axis) {
  if (axis.empty()) bad_axis(name, "must not be empty");
}

}  // namespace

void DesignSpace::validate() const {
  check_axis("design", designs);
  for (arch::TcamDesign d : designs) {
    if (d == arch::TcamDesign::kCmos16T) {
      bad_axis("design",
               "16T CMOS has no FE/write-voltage knobs; DSE covers the "
               "FeFET designs");
    }
  }
  check_axis("t_fe_scale", t_fe_scale);
  for (double v : t_fe_scale) {
    if (!(v > 0.0)) bad_axis("t_fe_scale", "values must be > 0");
  }
  check_axis("vdd", vdd);
  for (double v : vdd) {
    if (!(v > 0.0)) bad_axis("vdd", "values must be > 0");
  }
  check_axis("control_w_scale", control_w_scale);
  for (double v : control_w_scale) {
    if (!(v > 0.0)) bad_axis("control_w_scale", "values must be > 0");
  }
  check_axis("sense_trim_v", sense_trim_v);
  check_axis("rows", rows);
  for (int v : rows) {
    if (v < 1) bad_axis("rows", "values must be >= 1");
  }
  check_axis("word_bits", word_bits);
  for (int v : word_bits) {
    if (v < 1) bad_axis("word_bits", "values must be >= 1");
  }
  check_axis("mats", mats);
  for (int v : mats) {
    if (v < 1) bad_axis("mats", "values must be >= 1");
  }
  check_axis("digit_bits", digit_bits);
  for (int v : digit_bits) {
    if (v < 1 || v > 3) bad_axis("digit_bits", "values must be in [1, 3]");
  }
}

std::size_t DesignSpace::grid_size() const {
  return designs.size() * t_fe_scale.size() * vdd.size() *
         control_w_scale.size() * sense_trim_v.size() * rows.size() *
         word_bits.size() * mats.size() * digit_bits.size();
}

DesignPoint DesignSpace::grid_point(std::size_t idx) const {
  // Canonical order: designs outermost, digit_bits fastest.
  DesignPoint p;
  auto take = [&idx](const auto& axis) {
    const std::size_t i = idx % axis.size();
    idx /= axis.size();
    return axis[i];
  };
  p.digit_bits = take(digit_bits);
  p.mats = take(mats);
  p.word_bits = take(word_bits);
  p.rows = take(rows);
  p.sense_trim_v = take(sense_trim_v);
  p.control_w_scale = take(control_w_scale);
  p.vdd = take(vdd);
  p.t_fe_scale = take(t_fe_scale);
  p.design = take(designs);
  return p;
}

std::vector<DesignPoint> DesignSpace::grid_points() const {
  validate();
  const std::size_t n = grid_size();
  std::vector<DesignPoint> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(grid_point(i));
  return out;
}

std::vector<DesignPoint> DesignSpace::sample_points(std::size_t n,
                                                    std::uint64_t seed) const {
  validate();
  // Halton bases, one prime per axis (9 axes).
  static constexpr std::uint64_t kBases[] = {2, 3, 5, 7, 11, 13, 17, 19, 23};
  // Cranley–Patterson rotation: a fixed per-axis offset derived from the
  // seed shifts the whole sequence, so seeds decorrelate while each seed
  // stays fully deterministic.
  double shift[9];
  for (std::size_t a = 0; a < 9; ++a) {
    shift[a] = static_cast<double>(util::trial_key(seed, a) >> 11) *
               0x1.0p-53;  // uniform in [0, 1)
  }
  auto pick = [](const auto& axis, double u) {
    const std::size_t i = std::min(
        axis.size() - 1, static_cast<std::size_t>(u * axis.size()));
    return axis[i];
  };
  std::vector<DesignPoint> out;
  std::set<std::size_t> seen;  // collapse duplicates via the grid index
  for (std::size_t k = 0; out.size() < n && k < 64 * n + 64; ++k) {
    double u[9];
    for (std::size_t a = 0; a < 9; ++a) {
      u[a] = util::radical_inverse(k + 1, kBases[a]) + shift[a];
      if (u[a] >= 1.0) u[a] -= 1.0;
    }
    DesignPoint p;
    p.design = pick(designs, u[0]);
    p.t_fe_scale = pick(t_fe_scale, u[1]);
    p.vdd = pick(vdd, u[2]);
    p.control_w_scale = pick(control_w_scale, u[3]);
    p.sense_trim_v = pick(sense_trim_v, u[4]);
    p.rows = pick(rows, u[5]);
    p.word_bits = pick(word_bits, u[6]);
    p.mats = pick(mats, u[7]);
    p.digit_bits = pick(digit_bits, u[8]);
    // Canonical grid index doubles as the dedup key.
    std::size_t key = 0;
    auto fold = [&key](const auto& axis, const auto& v) {
      const auto it = std::find(axis.begin(), axis.end(), v);
      key = key * axis.size() +
            static_cast<std::size_t>(it - axis.begin());
    };
    fold(designs, p.design);
    fold(t_fe_scale, p.t_fe_scale);
    fold(vdd, p.vdd);
    fold(control_w_scale, p.control_w_scale);
    fold(sense_trim_v, p.sense_trim_v);
    fold(rows, p.rows);
    fold(word_bits, p.word_bits);
    fold(mats, p.mats);
    fold(digit_bits, p.digit_bits);
    if (seen.insert(key).second) out.push_back(p);
  }
  return out;
}

namespace {

double norm_on(const std::vector<double>& axis, double v) {
  const auto [lo, hi] = std::minmax_element(axis.begin(), axis.end());
  if (*hi == *lo) return 0.5;
  return (v - *lo) / (*hi - *lo);
}

double norm_log2(const std::vector<int>& axis, int v) {
  const auto [lo, hi] = std::minmax_element(axis.begin(), axis.end());
  if (*hi == *lo) return 0.5;
  return (std::log2(static_cast<double>(v)) -
          std::log2(static_cast<double>(*lo))) /
         (std::log2(static_cast<double>(*hi)) -
          std::log2(static_cast<double>(*lo)));
}

}  // namespace

std::vector<double> DesignSpace::features(const DesignPoint& p) const {
  const bool is_1p5 = p.design == arch::TcamDesign::k1p5SgFe ||
                      p.design == arch::TcamDesign::k1p5DgFe;
  const bool is_dg = p.design == arch::TcamDesign::k2DgFefet ||
                     p.design == arch::TcamDesign::k1p5DgFe;
  return {
      is_1p5 ? 1.0 : 0.0,
      is_dg ? 1.0 : 0.0,
      norm_on(t_fe_scale, p.t_fe_scale),
      norm_on(vdd, p.vdd),
      norm_on(control_w_scale, p.control_w_scale),
      norm_on(sense_trim_v, p.sense_trim_v),
      norm_log2(rows, p.rows),
      norm_log2(word_bits, p.word_bits),
      norm_log2(mats, p.mats),
      norm_on({1.0, 3.0}, static_cast<double>(p.digit_bits)),
  };
}

std::vector<std::string> DesignSpace::feature_names() const {
  return {"family_1p5", "gate_dg",   "t_fe_scale", "vdd",  "control_w",
          "sense_trim", "log2_rows", "log2_word",  "mats", "digit_bits"};
}

DesignSpace default_space() {
  DesignSpace s;
  s.designs = {arch::TcamDesign::k2SgFefet, arch::TcamDesign::k1p5DgFe};
  s.t_fe_scale = {0.8, 1.0};
  s.vdd = {0.7, 0.8};
  s.control_w_scale = {1.0, 1.25};
  s.sense_trim_v = {0.0, 0.05};
  s.rows = {16};
  s.word_bits = {8, 32};
  s.mats = {1, 4};
  s.digit_bits = {1, 2};
  return s;
}

DesignSpace parse_space(const std::string& text) {
  DesignSpace s;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank
    std::string eq;
    if (!(ls >> eq) || eq != "=") {
      throw std::invalid_argument("space file line " + std::to_string(lineno) +
                                  ": expected 'key = v1 v2 ...'");
    }
    auto read_doubles = [&ls, lineno](std::vector<double>& dst) {
      dst.clear();
      double v = 0.0;
      while (ls >> v) dst.push_back(v);
      if (!ls.eof() || dst.empty()) {
        throw std::invalid_argument("space file line " +
                                    std::to_string(lineno) +
                                    ": expected one or more numbers");
      }
    };
    auto read_ints = [&ls, lineno](std::vector<int>& dst) {
      dst.clear();
      int v = 0;
      while (ls >> v) dst.push_back(v);
      if (!ls.eof() || dst.empty()) {
        throw std::invalid_argument("space file line " +
                                    std::to_string(lineno) +
                                    ": expected one or more integers");
      }
    };
    if (key == "design") {
      s.designs.clear();
      std::string name;
      while (ls >> name) s.designs.push_back(flavor_from_name(name));
    } else if (key == "t_fe_scale") {
      read_doubles(s.t_fe_scale);
    } else if (key == "vdd") {
      read_doubles(s.vdd);
    } else if (key == "control_w_scale") {
      read_doubles(s.control_w_scale);
    } else if (key == "sense_trim_v") {
      read_doubles(s.sense_trim_v);
    } else if (key == "rows") {
      read_ints(s.rows);
    } else if (key == "word_bits") {
      read_ints(s.word_bits);
    } else if (key == "mats") {
      read_ints(s.mats);
    } else if (key == "digit_bits") {
      read_ints(s.digit_bits);
    } else {
      throw std::invalid_argument("space file line " + std::to_string(lineno) +
                                  ": unknown key '" + key + "'");
    }
  }
  s.validate();
  return s;
}

DesignSpace load_space_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open space file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_space(buf.str());
}

}  // namespace fetcam::dse
