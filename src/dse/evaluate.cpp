#include "dse/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "arch/hv_driver.hpp"
#include "devices/fefet.hpp"
#include "devices/preisach.hpp"
#include "eval/fom.hpp"
#include "util/rng.hpp"

namespace fetcam::dse {

namespace {

bool is_1p5(arch::TcamDesign d) {
  return d == arch::TcamDesign::k1p5SgFe || d == arch::TcamDesign::k1p5DgFe;
}

tcam::Flavor flavor_of(arch::TcamDesign d) {
  return (d == arch::TcamDesign::k2SgFefet ||
          d == arch::TcamDesign::k1p5SgFe)
             ? tcam::Flavor::kSg
             : tcam::Flavor::kDg;
}

dev::FeFetParams tuned_card(const DesignPoint& p) {
  return dev::scale_fe_thickness(flavor_of(p.design) == tcam::Flavor::kSg
                                     ? dev::sg_fefet_params()
                                     : dev::dg_fefet_params(),
                                 p.t_fe_scale);
}

/// Analytic 2FeFET cell yield: per-trial V_TH / memory-window samples for
/// the two devices, classified against the search drive.  The FG-referred
/// read level is the search voltage for SG cells and back_coupling times
/// the BG drive for DG cells (the window amplification of Fig. 1d).  Each
/// device must both conduct when stored LVT (on margin) and block when
/// stored HVT (off margin); both nominal margins are derated by
/// `margin_scale` for multi-level digits, the variation part is not.
double two_fefet_yield(const DesignPoint& p, const EvalOptions& opts,
                       double margin_scale, std::uint64_t point_seed) {
  const dev::FeFetParams card = tuned_card(p);
  const bool sg = flavor_of(p.design) == tcam::Flavor::kSg;
  const double v_search = (sg ? 0.45 : 2.0) + p.sense_trim_v;
  const double v_eff = sg ? v_search : card.back_coupling * v_search;
  const double on_nom = v_eff - (card.mos.vth0 - card.mw_fg / 2.0);
  const double off_nom = (card.mos.vth0 + card.mw_fg / 2.0) - v_eff;
  const auto& vp = opts.variability;

  int good = 0;
  const int n = std::max(opts.mc_samples, 0);
  for (int t = 0; t < n; ++t) {
    std::mt19937 rng = util::trial_rng(point_seed, static_cast<std::uint64_t>(t));
    std::normal_distribution<double> n01(0.0, 1.0);
    bool ok = true;
    for (int device = 0; device < 2; ++device) {
      const double dvth = vp.sigma_fefet_vth * n01(rng);
      const double dmw = card.mw_fg * vp.sigma_ps_rel * n01(rng) / 2.0;
      const double on = on_nom * margin_scale + (-dvth + dmw);
      const double off = off_nom * margin_scale + (dvth + dmw);
      if (on <= vp.decision_margin || off <= vp.decision_margin) ok = false;
    }
    if (ok) ++good;
  }
  return n > 0 ? static_cast<double>(good) / n : 1.0;
}

}  // namespace

double margin_scale_for(const DesignPoint& p) {
  if (p.digit_bits <= 1) return 1.0;
  const dev::FerroParams fe = tuned_card(p).fe;
  const auto prog_d = dev::multi_level_program(fe, p.digit_bits);
  const auto prog_1 = dev::multi_level_program(fe, 1);
  return dev::multi_level_margin(prog_d) / dev::multi_level_margin(prog_1);
}

eval::DividerDesign divider_design_for(const DesignPoint& p) {
  eval::DividerDesign d;
  d.fe = tuned_card(p);
  d.cell = tcam::apply_tuning(flavor_of(p.design), tcam::OnePointFiveParams{},
                              p.tuning(), d.fe);
  d.vdd = p.vdd;
  d.margin_scale = margin_scale_for(p);
  return d;
}

PointMetrics evaluate_point(const DesignPoint& p, const EvalOptions& opts,
                            std::uint64_t point_seed) {
  PointMetrics m;
  m.point = p;
  try {
    eval::FomOptions fopts;
    fopts.n_bits = p.word_bits;
    fopts.rows = p.rows;
    fopts.vdd = p.vdd;
    fopts.tuning = p.tuning();

    const auto lat = eval::measure_worst_latency(p.design, fopts);
    if (!lat.ok) {
      m.error = "latency: " + lat.error;
      return m;
    }
    const auto se =
        eval::measure_search_energy(p.design, fopts, lat.sized_timing);
    if (!se.ok) {
      m.error = "search energy: " + se.error;
      return m;
    }
    const auto we = eval::measure_write_energy(p.design, fopts);

    const int d = p.digit_bits;
    const int bits_per_mat = p.rows * p.word_bits * d;
    // Match-OR tree across mats: one gate stage per doubling.
    m.latency_ps =
        lat.latency_full * 1e12 +
        kMatTreePs * std::ceil(std::log2(static_cast<double>(p.mats)));
    m.search_energy_fj_per_bit = se.avg * 1e15 / d;
    m.write_energy_fj_per_bit = we.value_or(0.0) * 1e15 / d;

    const bool shared = is_1p5(p.design);  // Fig. 6 driver multiplexing
    const arch::ArrayArea area =
        arch::array_area(p.design, p.rows, p.word_bits,
                         arch::HvDriverParams{}.area_um2, shared);
    m.area_um2_per_bit = area.total_um2 / bits_per_mat +
                         kGlobalPeriphUm2 / (p.mats * bits_per_mat);

    const double ms = margin_scale_for(p);
    if (is_1p5(p.design)) {
      eval::VariabilityParams vp = opts.variability;
      vp.samples = opts.mc_samples;
      vp.seed = static_cast<unsigned>(point_seed);
      const auto rep = eval::analyze_variability(
          flavor_of(p.design), divider_design_for(p), vp);
      m.yield = rep.ok ? rep.cell_yield : 0.0;
    } else {
      m.yield = two_fefet_yield(p, opts, ms, point_seed);
    }
    m.ok = true;
  } catch (const std::exception& e) {
    m.ok = false;
    m.error = e.what();
  }
  return m;
}

}  // namespace fetcam::dse
