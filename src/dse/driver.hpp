// The DSE sweep driver: deterministic surrogate-pruned evaluation of a
// candidate list plus the exact/pruned comparison harness.
//
// Loop structure (run_dse):
//   1. Enumerate candidates — the full grid, or a seeded low-discrepancy
//      subset when a budget is set.
//   2. Process candidates in FIXED batches.  Every skip/evaluate decision
//      for batch B uses only the surrogate state fitted after batch B-1,
//      so decisions are a pure function of (options, candidate order) —
//      never of thread count.  The kept points of a batch evaluate in
//      parallel (util::parallel_map, per-point splitmix64 streams); the
//      surrogate refits once at each batch boundary.
//   3. A point is skipped only when its OPTIMISTIC surrogate prediction
//      (prediction minus prune_margin_k training RMSEs) is already
//      dominated by an actually-simulated point.
//   4. Validation arm: a seeded subsample of the skipped points is
//      re-simulated with the SAME per-point seeds it would have used in
//      the main arm, quantifying how often the optimistic bound was
//      violated and whether any pruned point belonged on the frontier.
//
// run_dse_comparison runs the exact arm once, then replays the pruned
// arm's decision process against a cache of the exact results — the
// pruned arm's counters are what a standalone pruned run would have
// simulated, at no extra simulation cost.  This is what bench_dse and
// the CI gate consume (frontier recall, eval fraction).
//
// Observability: counters dse.points.evaluated / dse.points.skipped /
// dse.points.validated prove the sims saved (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dse/design_space.hpp"
#include "dse/evaluate.hpp"
#include "dse/pareto.hpp"
#include "dse/surrogate.hpp"

namespace fetcam::dse {

struct DseOptions {
  DesignSpace space;
  /// 0 (or >= grid size) sweeps the full grid; otherwise a seeded
  /// low-discrepancy subset of at most `budget` points.
  std::size_t budget = 0;
  bool use_surrogate = true;
  std::size_t batch = 16;        ///< batch size of the deterministic loop
  /// Points evaluated unconditionally before pruning may start; 0 = auto
  /// (enough to make the first surrogate fit well-posed).
  std::size_t warmup = 0;
  double prune_margin_k = 2.0;   ///< optimistic margin, in training RMSEs
  double validate_fraction = 0.15;  ///< skipped-point re-simulation rate
  double surrogate_ridge = 1e-3;
  std::uint64_t seed = 1;        ///< candidate subset + validation draw
  EvalOptions eval;
};

/// One candidate's lifecycle through the sweep.
struct CandidateResult {
  DesignPoint point;
  PointMetrics metrics;    ///< valid when simulated
  bool simulated = false;  ///< main arm or validation arm ran the pipeline
  bool skipped = false;    ///< pruned by the surrogate in the main arm
  bool validated = false;  ///< skipped, then re-simulated for validation
  ObjVec predicted{};      ///< optimistic prediction at decision time
};

struct DseResult {
  std::vector<CandidateResult> candidates;  ///< enumeration order
  /// Indices (into candidates) of the non-dominated simulated points.
  std::vector<std::size_t> frontier;
  ObjVec reference{};      ///< hypervolume reference box
  double hypervolume = 0.0;

  std::size_t n_candidates = 0;
  std::size_t n_evaluated = 0;  ///< main-arm simulations
  std::size_t n_skipped = 0;
  std::size_t n_validated = 0;
  /// (main + validation simulations) / candidates — the cost ratio the
  /// CI gate bounds.
  double eval_fraction = 1.0;

  /// Worst violation of the optimistic bound among validated points,
  /// relative to the reference box: max over validated points and
  /// objectives of (optimistic - actual) / reference.  <= 0 means every
  /// skipped-and-checked point was at least as bad as predicted.
  double max_validation_gap = 0.0;
  /// Validated points that turned out non-dominated — frontier points the
  /// pruning would have lost.
  std::size_t validation_frontier_misses = 0;

  bool surrogate_used = false;
  ObjVec surrogate_rmse{};
  /// Per-knob first-order sensitivity (|linear weight| per objective),
  /// from a reporting fit over ALL simulated points; parallel to
  /// feature_names.
  std::vector<std::string> feature_names;
  std::vector<ObjVec> sensitivity;
};

/// Evaluation hook: candidate index + point -> metrics.  The default runs
/// evaluate_point with the per-point seed trial_key(eval.seed, index);
/// run_dse_comparison substitutes a cache lookup.
using EvalFn = std::function<PointMetrics(std::size_t, const DesignPoint&)>;

DseResult run_dse(const DseOptions& opts, const EvalFn& eval_fn = nullptr);

struct DseComparison {
  DseResult exact;   ///< surrogate off, every candidate simulated
  DseResult pruned;  ///< surrogate on, replayed against the exact cache
  /// Fraction of exact-frontier objective vectors the pruned arm's
  /// frontier recovered.
  double frontier_recall = 1.0;
};

DseComparison run_dse_comparison(const DseOptions& opts);

}  // namespace fetcam::dse
