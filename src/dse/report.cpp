#include "dse/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/rng.hpp"

namespace fetcam::dse {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_point_json(std::ostringstream& out, const CandidateResult& c,
                       double write_weight) {
  const DesignPoint& p = c.point;
  const PointMetrics& m = c.metrics;
  const ObjVec obj = m.objectives(write_weight);
  out << "{\"design\":\"" << flavor_name(p.design) << "\""
      << ",\"t_fe_scale\":" << num(p.t_fe_scale) << ",\"vdd\":" << num(p.vdd)
      << ",\"control_w_scale\":" << num(p.control_w_scale)
      << ",\"sense_trim_v\":" << num(p.sense_trim_v) << ",\"rows\":" << p.rows
      << ",\"word_bits\":" << p.word_bits << ",\"mats\":" << p.mats
      << ",\"digit_bits\":" << p.digit_bits
      << ",\"latency_ps\":" << num(m.latency_ps)
      << ",\"search_energy_fj_per_bit\":" << num(m.search_energy_fj_per_bit)
      << ",\"write_energy_fj_per_bit\":" << num(m.write_energy_fj_per_bit)
      << ",\"area_um2_per_bit\":" << num(m.area_um2_per_bit)
      << ",\"yield\":" << num(m.yield) << ",\"objectives\":[" << num(obj[0])
      << "," << num(obj[1]) << "," << num(obj[2]) << "," << num(obj[3])
      << "]}";
}

void append_arm_json(std::ostringstream& out, const DseResult& r,
                     double write_weight) {
  out << "\"candidates\":" << r.n_candidates
      << ",\"evaluated\":" << r.n_evaluated << ",\"skipped\":" << r.n_skipped
      << ",\"validated\":" << r.n_validated
      << ",\"eval_fraction\":" << num(r.eval_fraction)
      << ",\"hypervolume\":" << num(r.hypervolume) << ",\"frontier\":[";
  for (std::size_t k = 0; k < r.frontier.size(); ++k) {
    if (k) out << ",";
    append_point_json(out, r.candidates[r.frontier[k]], write_weight);
  }
  out << "]";
}

}  // namespace

std::vector<PaperPointCheck> check_paper_points(const DseOptions& opts,
                                                const DseResult& exact) {
  std::vector<PaperPointCheck> out;
  const double ww = opts.eval.write_weight;
  for (std::size_t d = 0; d < opts.space.designs.size(); ++d) {
    PaperPointCheck chk;
    // Nominal knobs inside the sweep's geometry (first geometry values).
    chk.point.design = opts.space.designs[d];
    chk.point.rows = opts.space.rows.front();
    chk.point.word_bits = opts.space.word_bits.front();
    chk.point.mats = 1;
    chk.point.digit_bits = 1;
    // An isolated seed stream well clear of the candidate indices.
    chk.metrics = evaluate_point(
        chk.point, opts.eval,
        util::trial_key(opts.eval.seed, (1u << 20) + d));
    if (chk.metrics.ok) {
      const ObjVec mine = chk.metrics.objectives(ww);
      for (const CandidateResult& c : exact.candidates) {
        if (!c.simulated || !c.metrics.ok) continue;
        const ObjVec other = c.metrics.objectives(ww);
        if (!dominates(other, mine)) continue;
        double depth = 1e30;
        for (std::size_t k = 0; k < mine.size(); ++k) {
          const double ref = std::max(exact.reference[k], 1e-12);
          depth = std::min(depth, (mine[k] - other[k]) / ref);
        }
        chk.domination_depth = std::max(chk.domination_depth, depth);
      }
    }
    out.push_back(chk);
  }
  return out;
}

std::string render_json(const DseOptions& opts, const DseResult& exact,
                        const DseResult* pruned, double recall,
                        const std::vector<PaperPointCheck>& paper,
                        int threads) {
  const double ww = opts.eval.write_weight;
  std::ostringstream out;
  out << "{\"schema\":\"fetcam.dse.v1\"";

  out << ",\"space\":{\"grid_size\":" << opts.space.grid_size()
      << ",\"designs\":[";
  for (std::size_t i = 0; i < opts.space.designs.size(); ++i) {
    if (i) out << ",";
    out << "\"" << flavor_name(opts.space.designs[i]) << "\"";
  }
  out << "]";
  auto axis_d = [&out](const char* name, const std::vector<double>& v) {
    out << ",\"" << name << "\":[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out << ",";
      out << num(v[i]);
    }
    out << "]";
  };
  auto axis_i = [&out](const char* name, const std::vector<int>& v) {
    out << ",\"" << name << "\":[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out << ",";
      out << v[i];
    }
    out << "]";
  };
  axis_d("t_fe_scale", opts.space.t_fe_scale);
  axis_d("vdd", opts.space.vdd);
  axis_d("control_w_scale", opts.space.control_w_scale);
  axis_d("sense_trim_v", opts.space.sense_trim_v);
  axis_i("rows", opts.space.rows);
  axis_i("word_bits", opts.space.word_bits);
  axis_i("mats", opts.space.mats);
  axis_i("digit_bits", opts.space.digit_bits);
  out << "}";

  out << ",\"budget\":" << opts.budget << ",\"seed\":" << opts.seed
      << ",\"threads\":" << threads << ",\"mc_samples\":"
      << opts.eval.mc_samples << ",\"write_weight\":" << num(ww)
      << ",\"objectives\":[\"latency_ps\",\"energy_fj_per_bit\","
         "\"area_um2_per_bit\",\"yield_loss\"]";

  out << ",\"exact\":{";
  append_arm_json(out, exact, ww);
  out << "}";

  out << ",\"surrogate\":{\"enabled\":" << (pruned ? "true" : "false");
  if (pruned) {
    out << ",\"prune_margin_k\":" << num(opts.prune_margin_k)
        << ",\"validate_fraction\":" << num(opts.validate_fraction) << ",";
    append_arm_json(out, *pruned, ww);
    out << ",\"rmse\":[" << num(pruned->surrogate_rmse[0]) << ","
        << num(pruned->surrogate_rmse[1]) << ","
        << num(pruned->surrogate_rmse[2]) << ","
        << num(pruned->surrogate_rmse[3]) << "]"
        << ",\"max_validation_gap\":" << num(pruned->max_validation_gap)
        << ",\"validation_frontier_misses\":"
        << pruned->validation_frontier_misses;
  }
  out << "}";
  if (pruned) out << ",\"surrogate_frontier_recall\":" << num(recall);

  out << ",\"paper_points\":[";
  for (std::size_t i = 0; i < paper.size(); ++i) {
    if (i) out << ",";
    const auto& chk = paper[i];
    const ObjVec obj = chk.metrics.objectives(ww);
    out << "{\"design\":\"" << flavor_name(chk.point.design) << "\""
        << ",\"ok\":" << (chk.metrics.ok ? "true" : "false")
        << ",\"objectives\":[" << num(obj[0]) << "," << num(obj[1]) << ","
        << num(obj[2]) << "," << num(obj[3]) << "]"
        << ",\"domination_depth\":" << num(chk.domination_depth) << "}";
  }
  out << "]";

  out << ",\"sensitivity\":{";
  for (std::size_t f = 0; f < exact.feature_names.size(); ++f) {
    if (f) out << ",";
    out << "\"" << exact.feature_names[f] << "\":[";
    if (f < exact.sensitivity.size()) {
      const ObjVec& s = exact.sensitivity[f];
      out << num(s[0]) << "," << num(s[1]) << "," << num(s[2]) << ","
          << num(s[3]);
    }
    out << "]";
  }
  out << "}}";
  return out.str();
}

std::string render_text(const DseOptions& opts, const DseResult& exact,
                        const DseResult* pruned, double recall,
                        const std::vector<PaperPointCheck>& paper) {
  const double ww = opts.eval.write_weight;
  std::ostringstream out;
  char buf[256];
  out << "DSE sweep: " << exact.n_candidates << " candidates, "
      << exact.frontier.size() << " frontier points, hypervolume "
      << num(exact.hypervolume) << "\n";
  if (pruned) {
    std::snprintf(buf, sizeof buf,
                  "surrogate arm: %zu evaluated + %zu validated of %zu "
                  "(%.0f%% of grid), frontier recall %.1f%%\n",
                  pruned->n_evaluated, pruned->n_validated,
                  pruned->n_candidates, 100.0 * pruned->eval_fraction,
                  100.0 * recall);
    out << buf;
  }
  out << "\n  design  t_fe  vdd   ctrlW trim  rowsxbitsxd @mats  "
         "lat(ps)  E(fJ/b)  A(um2/b)  yield\n";
  for (std::size_t i : exact.frontier) {
    const CandidateResult& c = exact.candidates[i];
    const DesignPoint& p = c.point;
    std::snprintf(buf, sizeof buf,
                  "  %-7s %4.2f  %4.2f  %4.2f  %+4.2f  %4dx%3dx%d @%-4d  "
                  "%7.1f  %7.3f  %8.4f  %5.3f\n",
                  flavor_name(p.design).c_str(), p.t_fe_scale, p.vdd,
                  p.control_w_scale, p.sense_trim_v, p.rows, p.word_bits,
                  p.digit_bits, p.mats, c.metrics.latency_ps,
                  c.metrics.search_energy_fj_per_bit +
                      ww * c.metrics.write_energy_fj_per_bit,
                  c.metrics.area_um2_per_bit, c.metrics.yield);
    out << buf;
  }
  out << "\npaper points:\n";
  for (const auto& chk : paper) {
    std::snprintf(buf, sizeof buf,
                  "  %-7s %s, domination depth %.3f\n",
                  flavor_name(chk.point.design).c_str(),
                  chk.metrics.ok ? "ok" : chk.metrics.error.c_str(),
                  chk.domination_depth);
    out << buf;
  }
  out << "\nknob sensitivity (|linear weight| per objective "
         "lat/E/A/yield-loss):\n";
  for (std::size_t f = 0; f < exact.feature_names.size() &&
                          f < exact.sensitivity.size();
       ++f) {
    const ObjVec& s = exact.sensitivity[f];
    std::snprintf(buf, sizeof buf, "  %-12s %9.3g %9.3g %9.3g %9.3g\n",
                  exact.feature_names[f].c_str(), s[0], s[1], s[2], s[3]);
    out << buf;
  }
  return out.str();
}

}  // namespace fetcam::dse
