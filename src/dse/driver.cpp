#include "dse/driver.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fetcam::dse {

namespace {

std::uint64_t point_seed(const DseOptions& opts, std::size_t index) {
  return util::trial_key(opts.eval.seed, index);
}

/// Uniform-[0,1) draw keyed on (seed, index) for the validation subsample
/// — a pure function of the pair, independent of everything else.
double validation_draw(std::uint64_t seed, std::size_t index) {
  return static_cast<double>(
             util::trial_key(seed, index, /*stream=*/7) >> 11) *
         0x1.0p-53;
}

void bump_counters(const DseResult& r) {
  if (!obs::metrics_on()) return;
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& eval_ctr = reg.counter("dse.points.evaluated");
  static obs::Counter& skip_ctr = reg.counter("dse.points.skipped");
  static obs::Counter& valid_ctr = reg.counter("dse.points.validated");
  eval_ctr.add(r.n_evaluated);
  skip_ctr.add(r.n_skipped);
  valid_ctr.add(r.n_validated);
}

}  // namespace

DseResult run_dse(const DseOptions& opts, const EvalFn& eval_fn) {
  opts.space.validate();
  const EvalFn eval = eval_fn ? eval_fn
                              : EvalFn([&opts](std::size_t i,
                                               const DesignPoint& p) {
                                  return evaluate_point(p, opts.eval,
                                                        point_seed(opts, i));
                                });

  DseResult res;
  {
    const std::size_t grid = opts.space.grid_size();
    std::vector<DesignPoint> pts =
        (opts.budget == 0 || opts.budget >= grid)
            ? opts.space.grid_points()
            : opts.space.sample_points(opts.budget, opts.seed);
    // Seeded shuffle: enumeration order clusters the space axis-by-axis
    // (all of design A before design B, ...), which would starve the
    // surrogate's warmup of coverage and delay pruning.  Sorting by a
    // splitmix64 key is a deterministic permutation — a pure function of
    // (seed, candidate count), never of threads.
    std::vector<std::size_t> order(pts.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&opts](std::size_t a, std::size_t b) {
                const auto ka = util::trial_key(opts.seed, a, /*stream=*/3);
                const auto kb = util::trial_key(opts.seed, b, /*stream=*/3);
                return ka != kb ? ka < kb : a < b;
              });
    res.candidates.resize(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      res.candidates[i].point = pts[order[i]];
    }
  }
  res.n_candidates = res.candidates.size();
  res.surrogate_used = opts.use_surrogate;

  const std::size_t n_feat = opts.space.feature_names().size();
  QuadraticSurrogate surrogate(n_feat, opts.surrogate_ridge);
  const std::size_t warmup =
      opts.warmup > 0 ? opts.warmup : surrogate.min_samples_to_fit();
  const std::size_t batch = std::max<std::size_t>(opts.batch, 1);

  // Objective vectors of every point simulated so far — the "actual"
  // designs a skip decision must find a dominator among.
  std::vector<ObjVec> actuals;

  for (std::size_t begin = 0; begin < res.candidates.size(); begin += batch) {
    const std::size_t end =
        std::min(begin + batch, res.candidates.size());

    // Decisions first, strictly sequential, from PRIOR-batch state only.
    std::vector<std::size_t> keep;
    for (std::size_t i = begin; i < end; ++i) {
      CandidateResult& c = res.candidates[i];
      bool skip = false;
      if (opts.use_surrogate && i >= warmup && surrogate.ready()) {
        const ObjVec opt = surrogate.optimistic(
            opts.space.features(c.point), opts.prune_margin_k);
        c.predicted = opt;
        for (const ObjVec& a : actuals) {
          if (dominates(a, opt)) {
            skip = true;
            break;
          }
        }
      }
      if (skip) {
        c.skipped = true;
        ++res.n_skipped;
      } else {
        keep.push_back(i);
      }
    }

    // Simulate the kept points of this batch in parallel; results land in
    // per-index slots, so the batch outcome is schedule-independent.
    const auto metrics = util::parallel_map<PointMetrics>(
        keep.size(), [&](std::size_t k) {
          const std::size_t i = keep[k];
          return eval(i, res.candidates[i].point);
        });

    // Ordered reduction: surrogate samples and the actuals list grow in
    // candidate order regardless of which thread finished first.
    for (std::size_t k = 0; k < keep.size(); ++k) {
      CandidateResult& c = res.candidates[keep[k]];
      c.metrics = metrics[k];
      c.simulated = true;
      ++res.n_evaluated;
      const ObjVec obj = c.metrics.objectives(opts.eval.write_weight);
      if (c.metrics.ok) {
        actuals.push_back(obj);
        surrogate.add_sample(opts.space.features(c.point), obj);
      }
    }
    if (opts.use_surrogate) surrogate.fit();
  }

  // Validation arm: seeded subsample of the skipped points, re-simulated
  // with the exact per-point seed the main arm would have used.
  std::vector<std::size_t> to_validate;
  for (std::size_t i = 0; i < res.candidates.size(); ++i) {
    if (res.candidates[i].skipped &&
        validation_draw(opts.seed, i) < opts.validate_fraction) {
      to_validate.push_back(i);
    }
  }
  const auto vmetrics = util::parallel_map<PointMetrics>(
      to_validate.size(), [&](std::size_t k) {
        const std::size_t i = to_validate[k];
        return eval(i, res.candidates[i].point);
      });
  for (std::size_t k = 0; k < to_validate.size(); ++k) {
    CandidateResult& c = res.candidates[to_validate[k]];
    c.metrics = vmetrics[k];
    c.simulated = true;
    c.validated = true;
    ++res.n_validated;
    if (c.metrics.ok) {
      actuals.push_back(c.metrics.objectives(opts.eval.write_weight));
    }
  }

  // Frontier over every simulated point (validation included: a validated
  // point that belonged on the frontier re-enters it here).
  std::vector<std::size_t> sim_index;
  std::vector<ObjVec> sim_objs;
  for (std::size_t i = 0; i < res.candidates.size(); ++i) {
    if (!res.candidates[i].simulated) continue;
    sim_index.push_back(i);
    sim_objs.push_back(
        res.candidates[i].metrics.objectives(opts.eval.write_weight));
  }
  for (std::size_t f : pareto_front(sim_objs)) {
    res.frontier.push_back(sim_index[f]);
  }
  res.reference = reference_point(sim_objs);
  std::vector<ObjVec> front_objs;
  for (std::size_t i : res.frontier) {
    front_objs.push_back(
        res.candidates[i].metrics.objectives(opts.eval.write_weight));
  }
  res.hypervolume = dominated_volume(front_objs, res.reference);

  // Validation verdicts need the final frontier context.
  for (std::size_t i : to_validate) {
    const CandidateResult& c = res.candidates[i];
    if (!c.metrics.ok) continue;
    const ObjVec obj = c.metrics.objectives(opts.eval.write_weight);
    for (std::size_t k = 0; k < obj.size(); ++k) {
      const double ref = std::max(res.reference[k], 1e-12);
      res.max_validation_gap =
          std::max(res.max_validation_gap, (c.predicted[k] - obj[k]) / ref);
    }
    if (std::find(res.frontier.begin(), res.frontier.end(), i) !=
        res.frontier.end()) {
      ++res.validation_frontier_misses;
    }
  }

  res.eval_fraction =
      res.n_candidates > 0
          ? static_cast<double>(res.n_evaluated + res.n_validated) /
                static_cast<double>(res.n_candidates)
          : 1.0;

  // Reporting fit over everything simulated (works with pruning off too).
  {
    QuadraticSurrogate reporter(n_feat, opts.surrogate_ridge);
    for (std::size_t i = 0; i < res.candidates.size(); ++i) {
      const CandidateResult& c = res.candidates[i];
      if (c.simulated && c.metrics.ok) {
        reporter.add_sample(opts.space.features(c.point),
                            c.metrics.objectives(opts.eval.write_weight));
      }
    }
    if (reporter.fit()) {
      res.surrogate_rmse = reporter.rmse();
      res.sensitivity = reporter.linear_sensitivity();
    }
  }
  res.feature_names = opts.space.feature_names();

  bump_counters(res);
  return res;
}

DseComparison run_dse_comparison(const DseOptions& opts) {
  DseComparison cmp;
  DseOptions exact_opts = opts;
  exact_opts.use_surrogate = false;
  cmp.exact = run_dse(exact_opts);

  // Replay the pruned arm against the exact results: identical candidate
  // lists (same space/budget/seed), identical per-point seeds, so a cache
  // hit returns bit-identical metrics and the pruned arm's counters are
  // exactly what a standalone pruned run would simulate.
  DseOptions pruned_opts = opts;
  pruned_opts.use_surrogate = true;
  const auto& cache = cmp.exact.candidates;
  cmp.pruned = run_dse(
      pruned_opts, [&cache, &opts](std::size_t i, const DesignPoint& p) {
        if (i < cache.size() && cache[i].simulated &&
            cache[i].point == p) {
          return cache[i].metrics;
        }
        return evaluate_point(p, opts.eval,
                              util::trial_key(opts.eval.seed, i));
      });

  // Recall: an exact-frontier vector is recovered when the pruned arm's
  // frontier contains an equal objective vector.
  std::size_t recovered = 0;
  const double ww = opts.eval.write_weight;
  for (std::size_t fi : cmp.exact.frontier) {
    const ObjVec want = cmp.exact.candidates[fi].metrics.objectives(ww);
    for (std::size_t pj : cmp.pruned.frontier) {
      if (cmp.pruned.candidates[pj].metrics.objectives(ww) == want) {
        ++recovered;
        break;
      }
    }
  }
  cmp.frontier_recall =
      cmp.exact.frontier.empty()
          ? 1.0
          : static_cast<double>(recovered) /
                static_cast<double>(cmp.exact.frontier.size());
  return cmp;
}

}  // namespace fetcam::dse
