// Per-point evaluation for the DSE sweep: map one DesignPoint through the
// existing spice/eval pipeline into the four sweep objectives.
//
//  * latency — worst-case one-cell-mismatch search latency from the
//    transient harness (eval::measure_worst_latency), plus a match-OR
//    tree penalty of kMatTreePs per doubling of the mat count;
//  * energy — miss-rate-weighted average search energy per stored bit,
//    plus `write_weight` times the per-bit write energy (search dominates
//    a CAM's duty cycle; the weight keeps write power from vanishing);
//  * area — array area per stored bit including the HV driver bank and a
//    global-periphery share amortized across mats;
//  * yield — cell-level variability yield at the configured MC budget:
//    the full divider Monte-Carlo for 1.5T1Fe designs
//    (eval::analyze_variability on the tuned DividerDesign), an analytic
//    V_TH/window-margin Monte-Carlo for the 2FeFET designs.
//
// Multi-level digits (digit_bits > 1) divide the per-bit energy and area
// by d and derate the yield margins by the multi-level level-spacing
// ratio (dev::multi_level_margin); latency is left at the binary value.
//
// Determinism: everything here is a pure function of (point, options,
// point_seed).  Yield trials draw from util::trial_rng(point_seed, trial)
// counter streams, so a sweep is bit-identical for any thread count or
// evaluation order.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "dse/design_space.hpp"
#include "eval/variability.hpp"

namespace fetcam::dse {

/// Match-OR tree latency per doubling of the mat count, picoseconds.
inline constexpr double kMatTreePs = 18.0;
/// Global periphery (priority encoder, I/O) amortized across mats, um^2.
inline constexpr double kGlobalPeriphUm2 = 160.0;

struct EvalOptions {
  int mc_samples = 64;        ///< variability trials per point
  std::uint64_t seed = 1;     ///< root seed; per-point streams derive from it
  double write_weight = 0.01; ///< write-energy share in the energy objective
  /// Variation sigmas for the yield arm (samples/seed fields are ignored;
  /// mc_samples and the per-point stream override them).
  eval::VariabilityParams variability;
};

/// The four minimized objectives, in report order.
enum Objective : std::size_t {
  kLatencyPs = 0,
  kEnergyFjPerBit = 1,
  kAreaUm2PerBit = 2,
  kYieldLoss = 3,
};
inline constexpr std::size_t kNumObjectives = 4;

struct PointMetrics {
  DesignPoint point;
  bool ok = false;
  std::string error;  ///< set when the point could not be evaluated

  double latency_ps = 0.0;
  double search_energy_fj_per_bit = 0.0;
  double write_energy_fj_per_bit = 0.0;
  double area_um2_per_bit = 0.0;
  double yield = 0.0;

  /// Minimized objective vector {latency, energy, area, 1 - yield}.  A
  /// failed point returns all +inf so it can never dominate (or join) a
  /// frontier; a zero-yield point stays finite (objective 3 = 1.0).
  std::array<double, kNumObjectives> objectives(double write_weight) const {
    if (!ok) {
      constexpr double inf = std::numeric_limits<double>::infinity();
      return {inf, inf, inf, inf};
    }
    return {latency_ps,
            search_energy_fj_per_bit + write_weight * write_energy_fj_per_bit,
            area_um2_per_bit, 1.0 - yield};
  }
};

/// The tuned divider design a 1.5T1Fe point maps to — exposed so tests
/// and the report can inspect exactly what the yield arm simulated.
eval::DividerDesign divider_design_for(const DesignPoint& p);

/// Multi-level sense-margin derating factor for d-bit digits (1.0 at
/// d = 1): adjacent-level spacing of the d-bit program divided by the
/// binary spacing, computed on the point's thickness-scaled card.
double margin_scale_for(const DesignPoint& p);

/// Evaluate one point.  `point_seed` isolates this point's MC stream;
/// the driver derives it as util::trial_key(opts.seed, candidate_index).
/// Never throws: invalid shapes come back as ok = false with the error
/// string, and the objectives of a failed point are all +inf so it can
/// never enter a Pareto frontier.
PointMetrics evaluate_point(const DesignPoint& p, const EvalOptions& opts,
                            std::uint64_t point_seed);

}  // namespace fetcam::dse
