#include "dse/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"

namespace fetcam::dse {

namespace {

/// Objectives 0..2 (latency/energy/area) are strictly positive circuit
/// quantities fit in log space; objective 3 (yield loss) can be exactly 0
/// and is fit linearly.
bool log_objective(std::size_t obj) { return obj < 3; }

double to_fit_space(std::size_t obj, double y) {
  return log_objective(obj) ? std::log(std::max(y, 1e-12)) : y;
}

double from_fit_space(std::size_t obj, double t) {
  return log_objective(obj) ? std::exp(t) : t;
}

}  // namespace

QuadraticSurrogate::QuadraticSurrogate(std::size_t n_features, double ridge)
    : n_features_(n_features), ridge_(ridge) {}

std::vector<double> QuadraticSurrogate::basis(
    const std::vector<double>& x) const {
  std::vector<double> b;
  b.reserve(basis_size());
  b.push_back(1.0);
  for (std::size_t i = 0; i < n_features_; ++i) b.push_back(x[i]);
  for (std::size_t i = 0; i < n_features_; ++i) b.push_back(x[i] * x[i]);
  // Cross terms against the leading feature (the cell-family flag in the
  // DSE space): the two families respond to geometry and voltage knobs
  // with different slopes, which a diagonal quadratic cannot express.
  for (std::size_t i = 1; i < n_features_; ++i) b.push_back(x[0] * x[i]);
  return b;
}

void QuadraticSurrogate::add_sample(const std::vector<double>& x,
                                    const ObjVec& y) {
  xs_.push_back(x);
  ys_.push_back(y);
}

bool QuadraticSurrogate::fit() {
  if (xs_.size() < min_samples_to_fit()) return ready_ = false;
  const num::Index m = static_cast<num::Index>(basis_size());

  // One shared Gram matrix (the basis does not depend on the objective).
  num::Matrix gram(m, m, 0.0);
  std::vector<std::vector<double>> phis;
  phis.reserve(xs_.size());
  for (const auto& x : xs_) phis.push_back(basis(x));
  for (const auto& phi : phis) {
    for (num::Index r = 0; r < m; ++r) {
      for (num::Index c = 0; c < m; ++c) {
        gram(r, c) += phi[static_cast<std::size_t>(r)] *
                      phi[static_cast<std::size_t>(c)];
      }
    }
  }
  // Ridge on every non-constant weight.
  for (num::Index r = 1; r < m; ++r) gram(r, r) += ridge_;

  num::LuFactorization lu;
  if (!lu.factor(gram)) return ready_ = false;

  for (std::size_t obj = 0; obj < 4; ++obj) {
    num::Vector rhs(m, 0.0);
    for (std::size_t s = 0; s < phis.size(); ++s) {
      const double t = to_fit_space(obj, ys_[s][obj]);
      for (num::Index r = 0; r < m; ++r) {
        rhs[r] += phis[s][static_cast<std::size_t>(r)] * t;
      }
    }
    const num::Vector w = lu.solve(rhs);
    weights_[obj].assign(w.begin(), w.end());

    // Training RMSE in FIT space: relative (log) error for the positive
    // objectives, absolute error for yield loss.  Measuring in objective
    // units would let a few large-valued outliers blow the margin past the
    // whole objective range, disabling pruning everywhere.
    double se = 0.0;
    for (std::size_t s = 0; s < phis.size(); ++s) {
      double t = 0.0;
      for (num::Index r = 0; r < m; ++r) {
        t += w[r] * phis[s][static_cast<std::size_t>(r)];
      }
      const double err = t - to_fit_space(obj, ys_[s][obj]);
      se += err * err;
    }
    rmse_[obj] = std::sqrt(se / static_cast<double>(phis.size()));

    double lo = to_fit_space(obj, ys_[0][obj]);
    double hi = lo;
    for (const ObjVec& y : ys_) {
      const double t = to_fit_space(obj, y[obj]);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    spread_[obj] = hi - lo;
  }
  return ready_ = true;
}

ObjVec QuadraticSurrogate::predict(const std::vector<double>& x) const {
  const std::vector<double> phi = basis(x);
  ObjVec out{};
  for (std::size_t obj = 0; obj < 4; ++obj) {
    double t = 0.0;
    for (std::size_t r = 0; r < phi.size(); ++r) {
      t += weights_[obj][r] * phi[r];
    }
    out[obj] = from_fit_space(obj, t);
  }
  return out;
}

ObjVec QuadraticSurrogate::optimistic(const std::vector<double>& x,
                                      double k_margin) const {
  const std::vector<double> phi = basis(x);
  ObjVec out{};
  for (std::size_t obj = 0; obj < 4; ++obj) {
    double t = 0.0;
    for (std::size_t r = 0; r < phi.size(); ++r) {
      t += weights_[obj][r] * phi[r];
    }
    // The margin is applied in FIT space — multiplicative for the log-fit
    // objectives, additive for yield loss — so it scales with the
    // prediction instead of with the worst-case outlier.  The ridge fit
    // near-interpolates small sample sets, driving the training RMSE
    // toward zero; the spread floor keeps the optimistic margin honest
    // until real residuals accumulate.
    const double sigma = std::max(rmse_[obj], 0.05 * spread_[obj]);
    out[obj] = from_fit_space(obj, t - k_margin * sigma);
  }
  // Yield loss cannot go below 0; the log objectives are positive by
  // construction, and clamping keeps the optimistic vector comparable.
  for (double& v : out) v = std::max(v, 0.0);
  return out;
}

std::vector<ObjVec> QuadraticSurrogate::linear_sensitivity() const {
  std::vector<ObjVec> out(n_features_);
  for (std::size_t f = 0; f < n_features_; ++f) {
    for (std::size_t obj = 0; obj < 4; ++obj) {
      out[f][obj] = std::abs(weights_[obj][f + 1]);
    }
  }
  return out;
}

}  // namespace fetcam::dse
