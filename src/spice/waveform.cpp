#include "spice/waveform.hpp"

#include <algorithm>
#include <cmath>

namespace fetcam::spice {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.points_ = {{0.0, value}};
  return w;
}

Waveform Waveform::pulse(double v0, double v1, double delay, double rise,
                         double fall, double width, double period) {
  assert(rise > 0.0 && fall > 0.0 && width >= 0.0);
  Waveform w;
  const double t1 = delay;
  const double t2 = t1 + rise;
  const double t3 = t2 + width;
  const double t4 = t3 + fall;
  w.points_ = {{0.0, v0}, {t1, v0}, {t2, v1}, {t3, v1}, {t4, v0}};
  if (period > 0.0) {
    assert(period >= t4 - 0.0);
    w.period_ = period;
  }
  return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  assert(!points.empty());
  assert(std::is_sorted(points.begin(), points.end(),
                        [](const auto& a, const auto& b) { return a.first < b.first; }));
  Waveform w;
  w.points_ = std::move(points);
  return w;
}

double Waveform::value_aperiodic(double t) const {
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  // Find the segment containing t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double tv, const auto& p) { return tv < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.first - lo.first;
  if (span <= 0.0) return hi.second;
  const double f = (t - lo.first) / span;
  return lo.second + f * (hi.second - lo.second);
}

double Waveform::value(double t) const {
  if (period_ > 0.0 && t > 0.0) {
    t = std::fmod(t, period_);
  }
  return value_aperiodic(t);
}

std::vector<double> Waveform::breakpoints(double t_stop) const {
  std::vector<double> bps;
  if (points_.size() < 2) return bps;
  if (period_ <= 0.0) {
    for (const auto& [t, v] : points_) {
      if (t > 0.0 && t < t_stop) bps.push_back(t);
    }
    return bps;
  }
  for (double base = 0.0; base < t_stop; base += period_) {
    for (const auto& [t, v] : points_) {
      const double bt = base + t;
      if (bt > 0.0 && bt < t_stop) bps.push_back(bt);
    }
    if (base + period_ < t_stop) bps.push_back(base + period_);
  }
  std::sort(bps.begin(), bps.end());
  bps.erase(std::unique(bps.begin(), bps.end()), bps.end());
  return bps;
}

double Waveform::max_value() const {
  double m = points_.front().second;
  for (const auto& [t, v] : points_) m = std::max(m, v);
  return m;
}

double Waveform::min_value() const {
  double m = points_.front().second;
  for (const auto& [t, v] : points_) m = std::min(m, v);
  return m;
}

}  // namespace fetcam::spice
