// Waveform export: CSV (plotting) and VCD (GTKWave-style viewers).
//
// VCD is nominally a digital format; analog values are emitted as `r`
// (real) variable changes, which GTKWave renders as analog steps — the
// conventional trick for mixed-signal dumps.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "spice/transient.hpp"

namespace fetcam::spice {

/// Write selected node voltages as CSV: header `t,<name>,...`, one row per
/// sample.  Unknown node names produce all-zero columns (flagged by the
/// return value: false when any requested signal was missing).
bool write_csv(std::ostream& os, const Trace& trace,
               const std::vector<std::string>& nodes);

/// Write selected node voltages as a VCD real-valued dump.
/// `timescale_fs` sets the VCD time unit in femtoseconds (default 1 ps).
bool write_vcd(std::ostream& os, const Trace& trace,
               const std::vector<std::string>& nodes,
               long long timescale_fs = 1000);

/// Convenience: write both files next to each other (`base`.csv, `base`.vcd).
/// Returns false if either file could not be opened or a signal is missing.
bool export_waveforms(const std::string& base_path, const Trace& trace,
                      const std::vector<std::string>& nodes);

}  // namespace fetcam::spice
