// Waveform measurements: threshold crossings, rise/fall times, integrals,
// and source-energy accounting.
//
// These implement the paper's metrics: search latency = ML crossing of the
// sense threshold relative to the SeL edge; search/write energy = integral of
// source power over an operation window.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "spice/transient.hpp"

namespace fetcam::spice {

enum class Edge { kRising, kFalling, kEither };

/// First time after `t_after` where `values` crosses `level` with the given
/// edge direction; linearly interpolated between samples.
std::optional<double> cross_time(std::span<const double> times,
                                 std::span<const double> values, double level,
                                 Edge edge, double t_after = 0.0);

/// 10%-90% rise time between `lo_frac` and `hi_frac` of [v_low, v_high].
std::optional<double> rise_time(std::span<const double> times,
                                std::span<const double> values, double v_low,
                                double v_high, double t_after = 0.0,
                                double lo_frac = 0.1, double hi_frac = 0.9);

/// Trapezoidal integral of `values` dt over [t0, t1] (clamped to the trace).
double integrate(std::span<const double> times, std::span<const double> values,
                 double t0, double t1);

/// Minimum / maximum over a window.
double window_min(std::span<const double> times,
                  std::span<const double> values, double t0, double t1);
double window_max(std::span<const double> times,
                  std::span<const double> values, double t0, double t1);

/// Value at time t (linear interpolation).
double sample_at(std::span<const double> times, std::span<const double> values,
                 double t);

/// Energy *delivered by* a voltage source over [t0, t1], joules.
/// With the branch current defined + -> (source) -> -, delivered power is
/// -V * I_branch.
double source_energy(const Trace& trace, std::string_view vsource_name,
                     double t0, double t1);

/// Total energy delivered by every voltage source whose name starts with
/// `prefix` ("" = all sources).  This is the per-operation energy metric.
double total_source_energy(const Trace& trace, std::string_view prefix,
                           double t0, double t1);

/// Charge delivered by a source over the window (integral of -I_branch).
double source_charge(const Trace& trace, std::string_view vsource_name,
                     double t0, double t1);

}  // namespace fetcam::spice
