#include "spice/dcsweep.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fetcam::spice {

std::vector<double> DcSweepResult::voltage(const Circuit& ckt,
                                           std::string_view node_name) const {
  std::vector<double> out;
  const auto n = ckt.find_node(node_name);
  if (!n) return out;
  const num::Index idx = ckt.node_sys_index(*n);
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(idx < 0 ? 0.0 : p.x[idx]);
  return out;
}

std::vector<double> DcSweepResult::branch_current(
    const Circuit& ckt, std::string_view device_name) const {
  std::vector<double> out;
  const Device* dev = ckt.find_device(device_name);
  if (dev == nullptr || dev->branch_count() == 0) return out;
  const num::Index idx = ckt.branch_sys_index(dev->branch_base());
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.x[idx]);
  return out;
}

std::vector<double> DcSweepResult::sweep_values() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.sweep_value);
  return out;
}

DcSweepResult dc_sweep(Circuit& ckt, VoltageSource& source, double v_start,
                       double v_stop, int steps, const OpOptions& opts) {
  const obs::ScopedSpan span("spice.dc_sweep", "spice");
  static obs::Counter& sweeps =
      obs::MetricsRegistry::instance().counter("dcsweep.sweeps");
  static obs::Counter& points =
      obs::MetricsRegistry::instance().counter("dcsweep.points");
  static obs::Counter& nonconverged =
      obs::MetricsRegistry::instance().counter("dcsweep.nonconverged");
  sweeps.inc();
  DcSweepResult res;
  res.ok = true;
  res.points.reserve(static_cast<std::size_t>(steps) + 1);
  const Waveform saved = source.waveform();
  num::Vector seed;
  // Every sweep point solves the same topology at a different source value,
  // so one workspace carries the factorization context across all points.
  num::SparseNewtonWorkspace ws;
  for (int k = 0; k <= steps; ++k) {
    const double v =
        v_start + (v_stop - v_start) * static_cast<double>(k) / steps;
    source.set_waveform(Waveform::dc(v));
    const OpResult op = solve_op(
        ckt, opts, seed.size() == ckt.system_size() ? &seed : nullptr, &ws);
    DcSweepPoint pt;
    pt.sweep_value = v;
    pt.converged = op.converged;
    pt.x = op.x;
    if (op.converged) {
      seed = op.x;
    } else {
      res.ok = false;
      nonconverged.inc();
    }
    points.inc();
    res.points.push_back(std::move(pt));
  }
  source.set_waveform(saved);
  return res;
}

}  // namespace fetcam::spice
