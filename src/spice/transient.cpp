#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spice/elements.hpp"

namespace fetcam::spice {

namespace {

/// Transient solver-health metrics: step accounting plus the per-step
/// Newton cost distribution (the dominant term of transient wall time).
struct TransientMetrics {
  obs::Counter& runs;
  obs::Counter& failed;
  obs::Counter& steps_accepted;
  obs::Counter& steps_rejected;
  obs::Counter& dt_exhausted;
  obs::Histogram& newton_per_step;

  static TransientMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static TransientMetrics m{
        reg.counter("transient.runs"),
        reg.counter("transient.failed"),
        reg.counter("transient.steps_accepted"),
        reg.counter("transient.steps_rejected"),
        reg.counter("transient.dt_exhausted"),
        reg.histogram("transient.newton_per_step",
                      {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
    };
    return m;
  }
};

void record_transient(const TransientResult& res, bool dt_exhausted) {
  if (!obs::metrics_on()) return;
  auto& m = TransientMetrics::get();
  m.runs.add();
  if (!res.ok) m.failed.add();
  if (dt_exhausted) m.dt_exhausted.add();
  m.steps_accepted.add(static_cast<std::uint64_t>(res.accepted_steps));
  m.steps_rejected.add(static_cast<std::uint64_t>(res.rejected_steps));
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

Trace::Trace(const Circuit& ckt) {
  for (NodeId n = 1; n < ckt.node_count(); ++n) {
    node_sys_index_.emplace(ckt.node_name(n), ckt.node_sys_index(n));
  }
  for (const auto& dev : ckt.devices()) {
    const auto* vs = dynamic_cast<const VoltageSource*>(dev.get());
    if (vs != nullptr) {
      sources_.emplace(vs->name(),
                       std::make_pair(ckt.branch_sys_index(vs->branch_base()),
                                      vs->waveform()));
    }
  }
}

num::Index Trace::node_index(std::string_view name) const {
  const auto it = node_sys_index_.find(std::string(name));
  return it == node_sys_index_.end() ? -1 : it->second;
}

num::Index Trace::branch_index(std::string_view name) const {
  const auto it = sources_.find(std::string(name));
  return it == sources_.end() ? -1 : it->second.first;
}

void Trace::append(double t, const num::Vector& x) {
  times_.push_back(t);
  samples_.push_back(x);
}

void Trace::reserve(std::size_t samples) {
  times_.reserve(samples);
  samples_.reserve(samples);
}

void Trace::shrink_to_fit() {
  times_.shrink_to_fit();
  samples_.shrink_to_fit();
}

std::vector<double> Trace::voltage(std::string_view node_name) const {
  std::vector<double> out;
  const num::Index idx = node_index(node_name);
  if (idx < 0) return out;
  out.reserve(times_.size());
  for (const auto& s : samples_) out.push_back(s[idx]);
  return out;
}

std::vector<double> Trace::branch_current(std::string_view device_name) const {
  std::vector<double> out;
  const num::Index idx = branch_index(device_name);
  if (idx < 0) return out;
  out.reserve(times_.size());
  for (const auto& s : samples_) out.push_back(s[idx]);
  return out;
}

double Trace::voltage_at_time(std::string_view node_name, double t) const {
  const num::Index idx = node_index(node_name);
  if (idx < 0 || times_.empty()) return 0.0;
  if (t <= times_.front()) return samples_.front()[idx];
  if (t >= times_.back()) return samples_.back()[idx];
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  const double f = span > 0.0 ? (t - times_[lo]) / span : 1.0;
  return samples_[lo][idx] + f * (samples_[hi][idx] - samples_[lo][idx]);
}

double Trace::source_value(std::string_view device_name, double t) const {
  const auto it = sources_.find(std::string(device_name));
  return it == sources_.end() ? 0.0 : it->second.second.value(t);
}

std::vector<std::string> Trace::source_names() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [name, info] : sources_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Transient engine
// ---------------------------------------------------------------------------

TransientResult run_transient(Circuit& ckt, const TransientOptions& opts) {
  const obs::ScopedSpan span("spice.transient", "spice");
  ckt.finalize();
  TransientResult res{.ok = false, .error = {}, .trace = Trace(ckt)};

  num::Vector x(ckt.system_size(), 0.0);

  // One sparse solver workspace for the whole run: the OP solve rebuilds
  // the stamp pattern once, the mode switch to transient (companion models
  // activate) rebuilds it once more, and every step after that replays the
  // recorded stamp slots and refactors numerically.
  num::SparseNewtonWorkspace local_ws;
  num::SparseNewtonWorkspace* ws =
      opts.workspace != nullptr ? opts.workspace : &local_ws;
  ws->lu_opts.reuse_symbolic = opts.reuse_factorization;

  // Operating point at t = 0 establishes initial conditions.
  if (!opts.skip_op) {
    OpOptions op_opts = opts.op;
    op_opts.reuse_factorization = opts.reuse_factorization;
    const OpResult op = solve_op(ckt, op_opts, nullptr, ws);
    res.total_newton_iterations += op.newton_iterations;
    if (!op.converged) {
      res.error = "operating point failed to converge";
      record_transient(res, /*dt_exhausted=*/false);
      return res;
    }
    x = op.x;
  }

  {
    EvalContext ctx;
    ctx.mode = AnalysisMode::kOperatingPoint;
    ctx.gmin = opts.gmin;
    const Solution sol(ckt, x);
    for (const auto& dev : ckt.devices()) dev->initialize_state(ctx, sol);
  }
  // Breakpoints: source edges plus t_stop.
  std::vector<double> bps = ckt.breakpoints(opts.t_stop);
  bps.push_back(opts.t_stop);
  std::size_t next_bp = 0;

  // Capacity plan: the accepted-step count is ~t_stop/dt plus one extra
  // step per breakpoint the stepper has to land on, plus the t=0 sample.
  // Halving episodes can exceed the estimate; append() still grows then.
  if (opts.dt > 0.0 && opts.t_stop > 0.0) {
    const double nominal = opts.t_stop / opts.dt;
    res.trace.reserve(static_cast<std::size_t>(nominal) + bps.size() + 2);
  }
  res.trace.append(0.0, x);

  double t = 0.0;
  double dt_eff = opts.dt;
  const double t_eps = opts.t_stop * 1e-12;

  while (t < opts.t_stop - t_eps) {
    while (next_bp < bps.size() && bps[next_bp] <= t + t_eps) ++next_bp;
    const double bp = next_bp < bps.size() ? bps[next_bp] : opts.t_stop;
    double t_next = std::min({t + dt_eff, bp, opts.t_stop});
    double dt_step = t_next - t;

    EvalContext ctx;
    ctx.mode = AnalysisMode::kTransient;
    ctx.gmin = opts.gmin;
    ctx.trapezoidal = opts.trapezoidal;

    bool accepted = false;
    num::Vector x_try = x;
    while (!accepted) {
      ctx.time = t + dt_step;
      ctx.dt = dt_step;
      x_try = x;
      const auto nr =
          solve_circuit_newton(ckt, ctx, x_try, opts.newton, opts.solver, ws);
      res.total_newton_iterations += nr.iterations;
      if (obs::metrics_on()) {
        TransientMetrics::get().newton_per_step.observe(nr.iterations);
      }
      if (nr.converged) {
        accepted = true;
        break;
      }
      ++res.rejected_steps;
      dt_step *= 0.5;
      if (dt_step < opts.dt_min) {
        std::ostringstream os;
        os << "transient step failed to converge at t=" << t
           << " (dt exhausted";
        if (nr.singular) os << ", singular row " << nr.singular_row;
        os << ")";
        res.error = os.str();
        record_transient(res, /*dt_exhausted=*/true);
        return res;
      }
    }

    x = x_try;
    t = ctx.time;
    ++res.accepted_steps;
    const Solution sol(ckt, x);
    for (const auto& dev : ckt.devices()) dev->commit_step(ctx, sol);
    res.trace.append(t, x);

    // Recover the step size after a halving episode.
    dt_eff = std::min(opts.dt, dt_step * 2.0);
  }

  res.ok = true;
  res.trace.shrink_to_fit();
  record_transient(res, /*dt_exhausted=*/false);
  return res;
}

}  // namespace fetcam::spice
