// DC sweep: repeated operating points while stepping one voltage source.
//
// Used for the Id-Vg device characterization (paper Fig. 1c/d) and for
// verifying the 1.5T1Fe divider voltages (paper Eq. 2/3).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "spice/elements.hpp"
#include "spice/op.hpp"

namespace fetcam::spice {

struct DcSweepPoint {
  double sweep_value = 0.0;
  bool converged = false;
  num::Vector x;
};

struct DcSweepResult {
  std::vector<DcSweepPoint> points;
  /// True when every point converged.
  bool ok = false;

  /// Extract a node-voltage column.
  std::vector<double> voltage(const Circuit& ckt,
                              std::string_view node_name) const;
  /// Extract a branch-current column for a voltage source.
  std::vector<double> branch_current(const Circuit& ckt,
                                     std::string_view device_name) const;
  std::vector<double> sweep_values() const;
};

/// Sweep `source` (its waveform is replaced by DC points) from v_start to
/// v_stop in `steps` intervals (steps+1 points), solving the OP at each with
/// the previous solution as the Newton seed.
DcSweepResult dc_sweep(Circuit& ckt, VoltageSource& source, double v_start,
                       double v_stop, int steps, const OpOptions& opts = {});

}  // namespace fetcam::spice
