// DC operating-point analysis with gmin and source-stepping continuation.
#pragma once

#include "numeric/newton.hpp"
#include "spice/circuit.hpp"

namespace fetcam::spice {

/// Which continuation strategy produced (or failed to produce) the
/// operating point.  kFailed means every enabled strategy diverged.
enum class OpStrategy { kDirect, kGmin, kSource, kFailed };

/// "direct" / "gmin" / "source" / "failed" — for reports and logs.
const char* to_string(OpStrategy s);

/// Linear-solver choice for the Newton iterations.  kAuto picks the sparse
/// Gilbert-Peierls LU once the MNA system outgrows the dense solver's sweet
/// spot (full-array simulations), dense otherwise.
enum class SolverKind { kAuto, kDense, kSparse };

/// System size at which kAuto switches to the sparse solver.
inline constexpr num::Index kSparseAutoThreshold = 300;

struct OpOptions {
  num::NewtonOptions newton;
  SolverKind solver = SolverKind::kAuto;
  /// Reuse the cached symbolic factorization / stamp-slot map across Newton
  /// iterations and continuation steps (sparse solver only).  Results are
  /// bit-identical either way; disabling forces the full symbolic+numeric
  /// factor every iteration — the A/B baseline for benchmarks.
  bool reuse_factorization = true;
  /// gmin shunt applied by nonlinear devices in the final solution.
  double gmin_floor = 1e-12;
  /// Starting gmin for continuation when the direct solve fails.
  double gmin_start = 1e-3;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
  /// Steps for source ramping 0 -> 1.
  int source_steps = 20;
};

struct OpResult {
  bool converged = false;
  num::Vector x;
  int newton_iterations = 0;  ///< cumulative across continuation
  /// Which strategy produced the solution (kFailed when !converged).
  OpStrategy strategy = OpStrategy::kFailed;
};

/// Assemble the MNA Jacobian/residual for all devices at candidate `x`.
/// Shared by OP, DC sweep, and transient.
void assemble_system(const Circuit& ckt, const EvalContext& ctx,
                     const num::Vector& x, num::Matrix& jac,
                     num::Vector& residual);
void assemble_system(const Circuit& ckt, const EvalContext& ctx,
                     const num::Vector& x, num::TripletAccumulator& jac,
                     num::Vector& residual);
/// Sink overload: lets the sparse Newton driver choose the assembly
/// destination (triplet pattern discovery vs stamp-slot replay).  The
/// dense/triplet overloads above delegate to this one.
void assemble_system(const Circuit& ckt, const EvalContext& ctx,
                     const num::Vector& x, JacobianSink& jac,
                     num::Vector& residual);

/// One Newton solve with the configured solver (used by OP and transient).
/// `ws` (optional) carries the reusable sparse factorization context across
/// calls; pass the same workspace for repeated solves of one topology
/// (transient steps, sweep points, MC corners) to hit the numeric-only
/// refactor path.  Ignored by the dense solver.
num::NewtonResult solve_circuit_newton(const Circuit& ckt,
                                       const EvalContext& ctx, num::Vector& x,
                                       const num::NewtonOptions& nopts,
                                       SolverKind solver,
                                       num::SparseNewtonWorkspace* ws = nullptr);

/// Solve the DC operating point.  Finalizes the circuit.
/// `initial_guess` (if non-null and correctly sized) seeds Newton — used by
/// DC sweeps for continuation between sweep points.
/// `ws` (optional) is the reusable sparse solver workspace; all continuation
/// strategies share it, and callers running many OPs on one topology pass
/// the same workspace each time.
OpResult solve_op(Circuit& ckt, const OpOptions& opts = {},
                  const num::Vector* initial_guess = nullptr,
                  num::SparseNewtonWorkspace* ws = nullptr);

}  // namespace fetcam::spice
