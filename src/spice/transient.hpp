// Transient analysis and waveform traces.
//
// Fixed nominal timestep with breakpoint alignment (steps always land on
// source edges) and step-halving retry on Newton non-convergence.  History
// state (capacitor charge, ferroelectric polarization) advances via
// Device::commit_step after every accepted step, so devices never see a
// rejected trial solution.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "numeric/newton.hpp"
#include "spice/circuit.hpp"
#include "spice/op.hpp"

namespace fetcam::spice {

/// Recorded waveforms for every unknown of a transient run.
///
/// Self-contained: the node-name and source-name lookup tables are
/// snapshotted at construction, so a Trace stays valid after the Circuit it
/// was recorded from is destroyed (measurement helpers hand traces across
/// harness lifetimes).
class Trace {
 public:
  /// Empty trace, fillable by assignment from a simulation result.
  Trace() = default;
  explicit Trace(const Circuit& ckt);

  void append(double t, const num::Vector& x);

  /// Capacity planning: pre-allocate for `samples` appends so the steady
  /// recording path never reallocates.  The transient engine estimates the
  /// count from t_stop / dt plus breakpoints.
  void reserve(std::size_t samples);
  /// Return over-reserved capacity after recording finished (long MC sweeps
  /// hold many traces alive at once).
  void shrink_to_fit();

  std::size_t size() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }

  /// Voltage waveform of a named node (empty if unknown).
  std::vector<double> voltage(std::string_view node_name) const;
  /// Branch-current waveform of a named voltage-source-like device (local
  /// branch 0; empty if unknown).  Sign convention: current flowing from
  /// the + terminal through the device to the - terminal.
  std::vector<double> branch_current(std::string_view device_name) const;

  /// Linear interpolation of a node voltage at time t (0 if unknown).
  double voltage_at_time(std::string_view node_name, double t) const;

  /// Source value (not branch current) of a recorded voltage source at t.
  double source_value(std::string_view device_name, double t) const;
  /// Names of all recorded voltage sources.
  std::vector<std::string> source_names() const;

 private:
  num::Index node_index(std::string_view name) const;    // -1 if unknown
  num::Index branch_index(std::string_view name) const;  // -1 if unknown

  std::unordered_map<std::string, num::Index> node_sys_index_;
  /// Voltage-source name -> (system index of its branch, waveform copy).
  std::unordered_map<std::string, std::pair<num::Index, Waveform>> sources_;
  std::vector<double> times_;
  std::vector<num::Vector> samples_;
};

struct TransientOptions {
  double t_stop = 0.0;
  /// Nominal timestep; the engine subdivides near breakpoints and on
  /// convergence trouble but never exceeds it.
  double dt = 1e-12;
  double dt_min = 1e-16;
  bool trapezoidal = false;
  double gmin = 1e-12;
  num::NewtonOptions newton;
  OpOptions op;
  SolverKind solver = SolverKind::kAuto;
  /// Skip the operating point and start from all-zero state (used when the
  /// caller wants a cold power-up transient).
  bool skip_op = false;
  /// Reuse the cached symbolic factorization / stamp-slot map across steps
  /// (sparse solver only).  Bit-identical results either way; disabling is
  /// the A/B baseline for benchmarks.
  bool reuse_factorization = true;
  /// Optional external sparse solver workspace.  Callers running many
  /// transients on one topology (MC trials, chained pulses) pass the same
  /// workspace to keep the factorization context hot across runs; when null
  /// the engine uses one internal workspace for the whole run.
  num::SparseNewtonWorkspace* workspace = nullptr;
};

struct TransientResult {
  bool ok = false;
  std::string error;
  Trace trace;
  int total_newton_iterations = 0;
  int accepted_steps = 0;
  int rejected_steps = 0;
};

/// Run transient analysis.  Device history state is left at t_stop on
/// success, enabling chained runs (e.g. write pulse, then search pulse).
TransientResult run_transient(Circuit& ckt, const TransientOptions& opts);

}  // namespace fetcam::spice
