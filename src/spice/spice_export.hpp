// Export a circuit as an ngspice-compatible netlist.
//
// Passives and sources map to native SPICE cards.  The EKV MOSFET and FeFET
// channel currents are emitted as behavioral B-sources implementing the
// exact closed-form EKV equation (softplus-squared, mobility degradation,
// channel-length modulation), and the device capacitances as explicit
// capacitors — so the exported deck reproduces this simulator's DC and
// search transients in ngspice for cross-validation.
//
// Limitations (stated in the deck header): ferroelectric polarization is
// frozen at its current state (the B-source carries the resulting V_TH), so
// exported decks cover reads/searches, not write transients; trapezoidal/BE
// integration differences show up at coarse timesteps.
#pragma once

#include <ostream>
#include <string>

#include "spice/circuit.hpp"

namespace fetcam::spice {

struct SpiceExportOptions {
  std::string title = "fetcam export";
  /// Emit a .tran card with this step/stop (0 disables).
  double tran_step = 0.0;
  double tran_stop = 0.0;
  /// Node voltages to .save (empty = all).
  std::vector<std::string> save_nodes;
};

/// Write the deck.  Returns false if the circuit contains a device kind the
/// exporter cannot represent (none currently exist, but guards regressions).
bool export_ngspice(std::ostream& os, const Circuit& ckt,
                    const SpiceExportOptions& opts = {});

/// Convenience: write to a file.
bool export_ngspice_file(const std::string& path, const Circuit& ckt,
                         const SpiceExportOptions& opts = {});

}  // namespace fetcam::spice
