#include "spice/measure.hpp"

#include "spice/elements.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fetcam::spice {

namespace {

double interp(double t0, double v0, double t1, double v1, double t) {
  const double span = t1 - t0;
  if (span <= 0.0) return v1;
  return v0 + (v1 - v0) * (t - t0) / span;
}

}  // namespace

std::optional<double> cross_time(std::span<const double> times,
                                 std::span<const double> values, double level,
                                 Edge edge, double t_after) {
  assert(times.size() == values.size());
  for (std::size_t k = 1; k < times.size(); ++k) {
    if (times[k] < t_after) continue;
    const double a = values[k - 1];
    const double b = values[k];
    const bool rising = a < level && b >= level;
    const bool falling = a > level && b <= level;
    const bool hit = (edge == Edge::kRising && rising) ||
                     (edge == Edge::kFalling && falling) ||
                     (edge == Edge::kEither && (rising || falling));
    if (!hit) continue;
    const double tc =
        times[k - 1] + (times[k] - times[k - 1]) * (level - a) / (b - a);
    if (tc >= t_after) return tc;
  }
  return std::nullopt;
}

std::optional<double> rise_time(std::span<const double> times,
                                std::span<const double> values, double v_low,
                                double v_high, double t_after, double lo_frac,
                                double hi_frac) {
  const double lo = v_low + lo_frac * (v_high - v_low);
  const double hi = v_low + hi_frac * (v_high - v_low);
  const auto t_lo = cross_time(times, values, lo, Edge::kRising, t_after);
  if (!t_lo) return std::nullopt;
  const auto t_hi = cross_time(times, values, hi, Edge::kRising, *t_lo);
  if (!t_hi) return std::nullopt;
  return *t_hi - *t_lo;
}

double sample_at(std::span<const double> times, std::span<const double> values,
                 double t) {
  assert(!times.empty() && times.size() == values.size());
  if (t <= times.front()) return values.front();
  if (t >= times.back()) return values.back();
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times.begin());
  return interp(times[hi - 1], values[hi - 1], times[hi], values[hi], t);
}

double integrate(std::span<const double> times, std::span<const double> values,
                 double t0, double t1) {
  assert(times.size() == values.size());
  if (times.empty() || t1 <= t0) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 1; k < times.size(); ++k) {
    double ta = times[k - 1];
    double tb = times[k];
    if (tb <= t0 || ta >= t1) continue;
    double va = values[k - 1];
    double vb = values[k];
    if (ta < t0) {
      va = interp(ta, va, tb, vb, t0);
      ta = t0;
    }
    if (tb > t1) {
      vb = interp(times[k - 1], values[k - 1], times[k], values[k], t1);
      tb = t1;
    }
    acc += 0.5 * (va + vb) * (tb - ta);
  }
  return acc;
}

double window_min(std::span<const double> times,
                  std::span<const double> values, double t0, double t1) {
  double m = sample_at(times, values, t0);
  for (std::size_t k = 0; k < times.size(); ++k) {
    if (times[k] >= t0 && times[k] <= t1) m = std::min(m, values[k]);
  }
  m = std::min(m, sample_at(times, values, t1));
  return m;
}

double window_max(std::span<const double> times,
                  std::span<const double> values, double t0, double t1) {
  double m = sample_at(times, values, t0);
  for (std::size_t k = 0; k < times.size(); ++k) {
    if (times[k] >= t0 && times[k] <= t1) m = std::max(m, values[k]);
  }
  m = std::max(m, sample_at(times, values, t1));
  return m;
}

double source_energy(const Trace& trace, std::string_view vsource_name,
                     double t0, double t1) {
  const auto times = trace.times();
  const auto ib = trace.branch_current(vsource_name);
  if (ib.empty()) return 0.0;
  std::vector<double> power(times.size());
  for (std::size_t k = 0; k < times.size(); ++k) {
    power[k] = -trace.source_value(vsource_name, times[k]) * ib[k];
  }
  return integrate(times, power, t0, t1);
}

double total_source_energy(const Trace& trace, std::string_view prefix,
                           double t0, double t1) {
  double total = 0.0;
  for (const auto& name : trace.source_names()) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    total += source_energy(trace, name, t0, t1);
  }
  return total;
}

double source_charge(const Trace& trace, std::string_view vsource_name,
                     double t0, double t1) {
  const auto times = trace.times();
  auto ib = trace.branch_current(vsource_name);
  if (ib.empty()) return 0.0;
  for (double& v : ib) v = -v;
  return integrate(times, ib, t0, t1);
}

}  // namespace fetcam::spice
