#include "spice/netlist.hpp"

#include <sstream>

namespace fetcam::spice {

std::string dump_netlist(const Circuit& ckt) {
  std::ostringstream os;
  os << "* netlist: " << ckt.devices().size() << " devices, "
     << ckt.node_count() << " nodes\n";
  for (const auto& dev : ckt.devices()) {
    os << dev->describe(ckt) << '\n';
  }
  return os.str();
}

std::vector<std::string> find_floating_nodes(const Circuit& ckt) {
  std::vector<int> degree(static_cast<std::size_t>(ckt.node_count()), 0);
  std::vector<bool> driven(static_cast<std::size_t>(ckt.node_count()), false);
  for (const auto& dev : ckt.devices()) {
    for (const NodeId n : dev->terminals()) {
      ++degree[static_cast<std::size_t>(n)];
      // Branch devices (voltage sources, VCVS) pin their nodes: a node that
      // only touches a driver is idle, not floating.
      if (dev->branch_count() > 0) driven[static_cast<std::size_t>(n)] = true;
    }
  }
  std::vector<std::string> floating;
  for (NodeId n = 1; n < ckt.node_count(); ++n) {
    if (degree[static_cast<std::size_t>(n)] < 2 &&
        !driven[static_cast<std::size_t>(n)]) {
      floating.push_back(ckt.node_name(n));
    }
  }
  return floating;
}

}  // namespace fetcam::spice
