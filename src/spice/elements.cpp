#include "spice/elements.hpp"

#include <stdexcept>

namespace fetcam::spice {

// ---------------------------------------------------------------------------
// Resistor
// ---------------------------------------------------------------------------

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("resistance must be positive");
}

void Resistor::set_resistance(double ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("resistance must be positive");
  ohms_ = ohms;
}

void Resistor::stamp(const EvalContext& ctx, Stamper& st) const {
  (void)ctx;
  st.stamp_conductance(a_, b_, 1.0 / ohms_);
}

// ---------------------------------------------------------------------------
// Capacitor
// ---------------------------------------------------------------------------

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name)), a_(a), b_(b), farads_(farads) {
  if (farads < 0.0) throw std::invalid_argument("capacitance must be >= 0");
}

double Capacitor::device_current(const EvalContext& ctx, double vab) const {
  if (ctx.trapezoidal) {
    return 2.0 * farads_ / ctx.dt * (vab - v_prev_) - i_prev_;
  }
  return farads_ / ctx.dt * (vab - v_prev_);
}

void Capacitor::stamp(const EvalContext& ctx, Stamper& st) const {
  if (ctx.mode == AnalysisMode::kOperatingPoint || farads_ == 0.0) return;
  const double vab = st.v(a_) - st.v(b_);
  const double geq =
      (ctx.trapezoidal ? 2.0 : 1.0) * farads_ / ctx.dt;
  st.add_current(a_, b_, device_current(ctx, vab));
  st.add_current_derivative(a_, b_, a_, geq);
  st.add_current_derivative(a_, b_, b_, -geq);
}

void Capacitor::initialize_state(const EvalContext& ctx, const Solution& sol) {
  (void)ctx;
  v_prev_ = sol.v(a_) - sol.v(b_);
  i_prev_ = 0.0;  // DC steady state: no capacitor current
}

void Capacitor::commit_step(const EvalContext& ctx, const Solution& sol) {
  const double vab = sol.v(a_) - sol.v(b_);
  i_prev_ = device_current(ctx, vab);
  v_prev_ = vab;
}

// ---------------------------------------------------------------------------
// VoltageSource
// ---------------------------------------------------------------------------

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             Waveform w)
    : Device(std::move(name)), plus_(plus), minus_(minus), wave_(std::move(w)) {}

void VoltageSource::stamp(const EvalContext& ctx, Stamper& st) const {
  const double target = ctx.source_scale * wave_.value(ctx.time);
  st.stamp_branch_voltage(branch_base(), plus_, minus_, target);
}

std::vector<double> VoltageSource::breakpoints(double t_stop) const {
  return wave_.breakpoints(t_stop);
}

// ---------------------------------------------------------------------------
// CurrentSource
// ---------------------------------------------------------------------------

CurrentSource::CurrentSource(std::string name, NodeId plus, NodeId minus,
                             Waveform w)
    : Device(std::move(name)), plus_(plus), minus_(minus), wave_(std::move(w)) {}

void CurrentSource::stamp(const EvalContext& ctx, Stamper& st) const {
  const double i = ctx.source_scale * wave_.value(ctx.time);
  st.add_current(plus_, minus_, i);
}

std::vector<double> CurrentSource::breakpoints(double t_stop) const {
  return wave_.breakpoints(t_stop);
}

// ---------------------------------------------------------------------------
// Vcvs
// ---------------------------------------------------------------------------

Vcvs::Vcvs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus,
           NodeId ctrl_minus, double gain)
    : Device(std::move(name)),
      plus_(plus),
      minus_(minus),
      ctrl_plus_(ctrl_plus),
      ctrl_minus_(ctrl_minus),
      gain_(gain) {}

void Vcvs::stamp(const EvalContext& ctx, Stamper& st) const {
  (void)ctx;
  st.stamp_branch_vcvs(branch_base(), plus_, minus_, ctrl_plus_, ctrl_minus_,
                       gain_);
}

}  // namespace fetcam::spice
