// Time-domain source waveforms (DC, pulse, piece-wise-linear, sine).
//
// Pulse/PWL expose their corner times as breakpoints so the transient engine
// can land a timestep exactly on every edge instead of smearing it — edge
// placement matters when measuring ML discharge delay against a search-pulse
// edge, which is exactly what the paper's latency numbers are.
#pragma once

#include <cassert>
#include <utility>
#include <vector>

namespace fetcam::spice {

/// Piecewise-linear waveform description shared by V and I sources.
class Waveform {
 public:
  /// Constant value for all time.
  static Waveform dc(double value);

  /// Classic SPICE PULSE(v0 v1 delay rise fall width period).
  /// `period` <= 0 gives a one-shot pulse.
  static Waveform pulse(double v0, double v1, double delay, double rise,
                        double fall, double width, double period = 0.0);

  /// Piecewise-linear through (t, v) points; must be sorted by t, and holds
  /// the first/last value outside the span.
  static Waveform pwl(std::vector<std::pair<double, double>> points);

  /// Value at time t (>= 0).
  double value(double t) const;

  /// Value used for the DC operating point (t = 0).
  double dc_value() const { return value(0.0); }

  /// Times at which the slope changes within [0, t_stop]; the transient
  /// engine forces steps onto these.
  std::vector<double> breakpoints(double t_stop) const;

  /// Largest value over all time (used by drivers to size supply rails).
  double max_value() const;
  double min_value() const;

  /// Underlying PWL corner points (for exporters).
  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }
  /// Repetition period in seconds; 0 = aperiodic.
  double period_s() const { return period_; }

 private:
  // Everything is represented as one PWL segment list plus optional
  // periodicity, which keeps value() trivial and breakpoints() exact.
  std::vector<std::pair<double, double>> points_;
  double period_ = 0.0;  // 0 => aperiodic

  double value_aperiodic(double t) const;
};

}  // namespace fetcam::spice
