// Linear circuit elements: resistor, capacitor, independent sources, VCVS.
#pragma once

#include "spice/circuit.hpp"

namespace fetcam::spice {

/// Two-terminal linear resistor.
class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  std::string_view kind() const override { return "resistor"; }
  void stamp(const EvalContext& ctx, Stamper& st) const override;
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  double resistance() const { return ohms_; }
  void set_resistance(double ohms);

 private:
  NodeId a_, b_;
  double ohms_;
};

/// Two-terminal linear capacitor.  Open during OP; companion model during
/// transient (backward-Euler or trapezoidal per EvalContext::trapezoidal).
class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);

  std::string_view kind() const override { return "capacitor"; }
  void stamp(const EvalContext& ctx, Stamper& st) const override;
  void initialize_state(const EvalContext& ctx, const Solution& sol) override;
  void commit_step(const EvalContext& ctx, const Solution& sol) override;
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  double capacitance() const { return farads_; }
  /// Device current at the last committed step (a -> b), amperes.
  double last_current() const { return i_prev_; }

 private:
  double device_current(const EvalContext& ctx, double vab) const;

  NodeId a_, b_;
  double farads_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

/// Independent voltage source with an arbitrary waveform.  Owns one branch
/// unknown: the current flowing + -> (through source) -> -.
class VoltageSource : public Device {
 public:
  VoltageSource(std::string name, NodeId plus, NodeId minus, Waveform w);

  std::string_view kind() const override { return "vsource"; }
  int branch_count() const override { return 1; }
  void stamp(const EvalContext& ctx, Stamper& st) const override;
  std::vector<double> breakpoints(double t_stop) const override;
  std::vector<NodeId> terminals() const override { return {plus_, minus_}; }

  const Waveform& waveform() const { return wave_; }
  void set_waveform(Waveform w) { wave_ = std::move(w); }
  /// Source value at time t with no continuation scaling.
  double value_at(double t) const { return wave_.value(t); }

 private:
  NodeId plus_, minus_;
  Waveform wave_;
};

/// Independent current source (current flows from + node through the source
/// to the - node, i.e. it pulls current out of + and pushes it into -).
class CurrentSource : public Device {
 public:
  CurrentSource(std::string name, NodeId plus, NodeId minus, Waveform w);

  std::string_view kind() const override { return "isource"; }
  void stamp(const EvalContext& ctx, Stamper& st) const override;
  std::vector<double> breakpoints(double t_stop) const override;
  std::vector<NodeId> terminals() const override { return {plus_, minus_}; }

  const Waveform& waveform() const { return wave_; }

 private:
  NodeId plus_, minus_;
  Waveform wave_;
};

/// Voltage-controlled voltage source (ideal, one branch unknown).
class Vcvs : public Device {
 public:
  Vcvs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus,
       NodeId ctrl_minus, double gain);

  std::string_view kind() const override { return "vcvs"; }
  int branch_count() const override { return 1; }
  void stamp(const EvalContext& ctx, Stamper& st) const override;
  std::vector<NodeId> terminals() const override {
    return {plus_, minus_, ctrl_plus_, ctrl_minus_};
  }

  double gain() const { return gain_; }

 private:
  NodeId plus_, minus_, ctrl_plus_, ctrl_minus_;
  double gain_;
};

}  // namespace fetcam::spice
