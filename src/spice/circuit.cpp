#include "spice/circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fetcam::spice {

// ---------------------------------------------------------------------------
// Stamper
// ---------------------------------------------------------------------------

Stamper::Stamper(const Circuit& ckt, const num::Vector& x, JacobianSink& jac,
                 num::Vector& residual)
    : ckt_(ckt), x_(x), jac_(jac), residual_(residual) {}

num::Index Stamper::sys_index_node(NodeId n) const {
  return ckt_.node_sys_index(n);
}

num::Index Stamper::sys_index_branch(num::Index b) const {
  return ckt_.branch_sys_index(b);
}

double Stamper::v(NodeId n) const {
  const num::Index i = sys_index_node(n);
  return i < 0 ? 0.0 : x_[i];
}

double Stamper::branch_current(num::Index branch_index) const {
  return x_[sys_index_branch(branch_index)];
}

void Stamper::stamp_conductance(NodeId a, NodeId b, double g) {
  const double i = g * (v(a) - v(b));
  add_current(a, b, i);
  add_current_derivative(a, b, a, g);
  add_current_derivative(a, b, b, -g);
}

void Stamper::add_current(NodeId a, NodeId b, double current) {
  const num::Index ia = sys_index_node(a);
  const num::Index ib = sys_index_node(b);
  if (ia >= 0) residual_[ia] += current;
  if (ib >= 0) residual_[ib] -= current;
}

void Stamper::add_current_derivative(NodeId a, NodeId b, NodeId wrt,
                                     double dIdV) {
  const num::Index ia = sys_index_node(a);
  const num::Index ib = sys_index_node(b);
  const num::Index iw = sys_index_node(wrt);
  if (iw < 0) return;
  if (ia >= 0) jac_.add(ia, iw, dIdV);
  if (ib >= 0) jac_.add(ib, iw, -dIdV);
}

void Stamper::add_gmin(NodeId n, double gmin) {
  if (gmin <= 0.0) return;
  stamp_conductance(n, kGround, gmin);
}

void Stamper::stamp_branch_voltage(num::Index branch_index, NodeId plus,
                                   NodeId minus, double target_voltage) {
  const num::Index ibr = sys_index_branch(branch_index);
  const num::Index ip = sys_index_node(plus);
  const num::Index im = sys_index_node(minus);
  const double i_br = x_[ibr];

  // KCL contributions of the branch current (leaves `plus`, enters `minus`).
  if (ip >= 0) {
    residual_[ip] += i_br;
    jac_.add(ip, ibr, 1.0);
  }
  if (im >= 0) {
    residual_[im] -= i_br;
    jac_.add(im, ibr, -1.0);
  }
  // KVL row: v(plus) - v(minus) - target = 0.
  residual_[ibr] += v(plus) - v(minus) - target_voltage;
  if (ip >= 0) jac_.add(ibr, ip, 1.0);
  if (im >= 0) jac_.add(ibr, im, -1.0);
}

void Stamper::stamp_branch_vcvs(num::Index branch_index, NodeId plus,
                                NodeId minus, NodeId ctrl_plus,
                                NodeId ctrl_minus, double gain) {
  stamp_branch_voltage(branch_index, plus, minus,
                       gain * (v(ctrl_plus) - v(ctrl_minus)));
  // stamp_branch_voltage treated the control term as a constant; add its
  // derivatives to the KVL row.
  const num::Index ibr = sys_index_branch(branch_index);
  const num::Index icp = sys_index_node(ctrl_plus);
  const num::Index icm = sys_index_node(ctrl_minus);
  if (icp >= 0) jac_.add(ibr, icp, -gain);
  if (icm >= 0) jac_.add(ibr, icm, gain);
}

// ---------------------------------------------------------------------------
// Solution
// ---------------------------------------------------------------------------

double Solution::v(NodeId n) const {
  const num::Index i = ckt_.node_sys_index(n);
  return i < 0 ? 0.0 : x_[i];
}

double Solution::branch_current(num::Index branch_index) const {
  return x_[ckt_.branch_sys_index(branch_index)];
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

std::string Device::describe(const Circuit& ckt) const {
  std::ostringstream os;
  os << kind() << ' ' << name() << " (";
  const auto terms = terminals();
  for (std::size_t i = 0; i < terms.size(); ++i) {
    os << ckt.node_name(terms[i]);
    if (i + 1 != terms.size()) os << ", ";
  }
  os << ')';
  return os.str();
}

// ---------------------------------------------------------------------------
// Circuit
// ---------------------------------------------------------------------------

Circuit::Circuit() {
  node_names_.push_back("0");
  node_lookup_.emplace("0", kGround);
  // Common aliases for ground.
  node_lookup_.emplace("gnd", kGround);
  node_lookup_.emplace("GND", kGround);
}

NodeId Circuit::node(std::string_view name) {
  const std::string key(name);
  const auto it = node_lookup_.find(key);
  if (it != node_lookup_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(key);
  node_lookup_.emplace(key, id);
  finalized_ = false;
  return id;
}

NodeId Circuit::internal_node(std::string_view prefix) {
  std::ostringstream os;
  os << prefix << "#" << internal_counter_++;
  return node(os.str());
}

std::optional<NodeId> Circuit::find_node(std::string_view name) const {
  const auto it = node_lookup_.find(std::string(name));
  if (it == node_lookup_.end()) return std::nullopt;
  return it->second;
}

const std::string& Circuit::node_name(NodeId n) const {
  return node_names_.at(static_cast<std::size_t>(n));
}

Device& Circuit::add(std::unique_ptr<Device> dev) {
  if (device_lookup_.contains(dev->name())) {
    throw std::invalid_argument("duplicate device name: " + dev->name());
  }
  Device& ref = *dev;
  device_lookup_.emplace(dev->name(), dev.get());
  devices_.push_back(std::move(dev));
  finalized_ = false;
  return ref;
}

Device* Circuit::find_device(std::string_view name) const {
  const auto it = device_lookup_.find(std::string(name));
  return it == device_lookup_.end() ? nullptr : it->second;
}

void Circuit::finalize() {
  if (finalized_) return;
  branch_count_ = 0;
  for (const auto& dev : devices_) {
    if (dev->branch_count() > 0) {
      dev->set_branch_base(branch_count_);
      branch_count_ += dev->branch_count();
    }
  }
  system_size_ = static_cast<num::Index>(node_count()) - 1 + branch_count_;
  finalized_ = true;
}

std::vector<double> Circuit::breakpoints(double t_stop) const {
  std::vector<double> all;
  for (const auto& dev : devices_) {
    const auto bps = dev->breakpoints(t_stop);
    all.insert(all.end(), bps.begin(), bps.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace fetcam::spice
