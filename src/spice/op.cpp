#include "spice/op.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fetcam::spice {

const char* to_string(OpStrategy s) {
  switch (s) {
    case OpStrategy::kDirect: return "direct";
    case OpStrategy::kGmin: return "gmin";
    case OpStrategy::kSource: return "source";
    case OpStrategy::kFailed: return "failed";
  }
  return "failed";
}

void assemble_system(const Circuit& ckt, const EvalContext& ctx,
                     const num::Vector& x, JacobianSink& jac,
                     num::Vector& residual) {
  Stamper st(ckt, x, jac, residual);
  for (const auto& dev : ckt.devices()) {
    dev->stamp(ctx, st);
  }
}

void assemble_system(const Circuit& ckt, const EvalContext& ctx,
                     const num::Vector& x, num::Matrix& jac,
                     num::Vector& residual) {
  DenseJacobianSink sink(jac);
  assemble_system(ckt, ctx, x, sink, residual);
}

void assemble_system(const Circuit& ckt, const EvalContext& ctx,
                     const num::Vector& x, num::TripletAccumulator& jac,
                     num::Vector& residual) {
  TripletJacobianSink sink(jac);
  assemble_system(ckt, ctx, x, sink, residual);
}

num::NewtonResult solve_circuit_newton(const Circuit& ckt,
                                       const EvalContext& ctx, num::Vector& x,
                                       const num::NewtonOptions& nopts,
                                       SolverKind solver,
                                       num::SparseNewtonWorkspace* ws) {
  const bool sparse =
      solver == SolverKind::kSparse ||
      (solver == SolverKind::kAuto && ckt.system_size() > kSparseAutoThreshold);
  if (sparse) {
    num::SparseNewtonWorkspace local_ws;
    num::SparseNewtonWorkspace& w = ws != nullptr ? *ws : local_ws;
    const auto assemble = [&](const num::Vector& xx, num::JacobianSink& jac,
                              num::Vector& residual) {
      assemble_system(ckt, ctx, xx, jac, residual);
    };
    return num::solve_newton_sparse(assemble, x, w, nopts);
  }
  const auto assemble = [&](const num::Vector& xx, num::Matrix& jac,
                            num::Vector& residual) {
    assemble_system(ckt, ctx, xx, jac, residual);
  };
  return num::solve_newton(assemble, x, nopts);
}

namespace {

/// Operating-point solver-health metrics (registered once per process).
struct OpMetrics {
  obs::Counter& solves;
  obs::Counter& failed;
  obs::Counter& direct;
  obs::Counter& gmin;
  obs::Counter& source;
  obs::Histogram& iterations;

  static OpMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static OpMetrics m{
        reg.counter("op.solves"),
        reg.counter("op.failed"),
        reg.counter("op.strategy.direct"),
        reg.counter("op.strategy.gmin"),
        reg.counter("op.strategy.source"),
        reg.histogram("op.newton_iterations",
                      {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
    };
    return m;
  }
};

num::NewtonResult run_newton(const Circuit& ckt, const EvalContext& ctx,
                             num::Vector& x, const num::NewtonOptions& nopts,
                             SolverKind solver,
                             num::SparseNewtonWorkspace* ws) {
  return solve_circuit_newton(ckt, ctx, x, nopts, solver, ws);
}

void record_op(const OpResult& res) {
  if (!obs::metrics_on()) return;
  auto& m = OpMetrics::get();
  m.solves.add();
  m.iterations.observe(res.newton_iterations);
  switch (res.strategy) {
    case OpStrategy::kDirect: m.direct.add(); break;
    case OpStrategy::kGmin: m.gmin.add(); break;
    case OpStrategy::kSource: m.source.add(); break;
    case OpStrategy::kFailed: m.failed.add(); break;
  }
}

}  // namespace

OpResult solve_op(Circuit& ckt, const OpOptions& opts,
                  const num::Vector* initial_guess,
                  num::SparseNewtonWorkspace* ws) {
  const obs::ScopedSpan span("spice.solve_op", "spice");
  ckt.finalize();
  OpResult res;
  res.x.assign(ckt.system_size(), 0.0);
  if (initial_guess != nullptr && initial_guess->size() == ckt.system_size()) {
    res.x = *initial_guess;
  }

  // All continuation strategies stamp the same Jacobian pattern (gmin and
  // source scaling change values, never the stamp sequence), so one shared
  // workspace keeps the symbolic factorization hot across strategies.
  if (ws != nullptr) ws->lu_opts.reuse_symbolic = opts.reuse_factorization;

  EvalContext ctx;
  ctx.mode = AnalysisMode::kOperatingPoint;
  ctx.gmin = opts.gmin_floor;

  // Strategy 1: direct Newton.
  {
    num::Vector x = res.x;
    const auto nr = run_newton(ckt, ctx, x, opts.newton, opts.solver, ws);
    res.newton_iterations += nr.iterations;
    if (nr.converged) {
      res.converged = true;
      res.strategy = OpStrategy::kDirect;
      res.x = x;
      record_op(res);
      return res;
    }
  }

  // Strategy 2: gmin stepping — start with a heavy shunt everywhere and relax.
  if (opts.allow_gmin_stepping) {
    num::Vector x(ckt.system_size(), 0.0);
    bool ok = true;
    for (double g = opts.gmin_start; g >= opts.gmin_floor * 0.99; g /= 10.0) {
      ctx.gmin = g;
      const auto nr = run_newton(ckt, ctx, x, opts.newton, opts.solver, ws);
      res.newton_iterations += nr.iterations;
      if (!nr.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      // Final polish at the floor gmin.
      ctx.gmin = opts.gmin_floor;
      const auto nr = run_newton(ckt, ctx, x, opts.newton, opts.solver, ws);
      res.newton_iterations += nr.iterations;
      if (nr.converged) {
        res.converged = true;
        res.strategy = OpStrategy::kGmin;
        res.x = x;
        record_op(res);
        return res;
      }
    }
  }

  // Strategy 3: source stepping — ramp all independent sources from zero.
  if (opts.allow_source_stepping) {
    ctx.gmin = opts.gmin_floor;
    num::Vector x(ckt.system_size(), 0.0);
    bool ok = true;
    for (int s = 1; s <= opts.source_steps; ++s) {
      ctx.source_scale = static_cast<double>(s) / opts.source_steps;
      const auto nr = run_newton(ckt, ctx, x, opts.newton, opts.solver, ws);
      res.newton_iterations += nr.iterations;
      if (!nr.converged) {
        ok = false;
        break;
      }
    }
    ctx.source_scale = 1.0;
    if (ok) {
      res.converged = true;
      res.strategy = OpStrategy::kSource;
      res.x = x;
      record_op(res);
      return res;
    }
  }

  record_op(res);
  return res;
}

}  // namespace fetcam::spice
