#include "spice/waveio.hpp"

#include <cmath>
#include <fstream>

namespace fetcam::spice {

namespace {

/// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(std::size_t k) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + k % 94));
    k /= 94;
  } while (k > 0);
  return id;
}

/// VCD variable names must not contain whitespace; dots are fine.
std::string vcd_name(const std::string& node) {
  std::string out = node;
  for (char& c : out) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return out;
}

}  // namespace

bool write_csv(std::ostream& os, const Trace& trace,
               const std::vector<std::string>& nodes) {
  bool all_found = true;
  std::vector<std::vector<double>> cols;
  os << "t";
  for (const auto& n : nodes) {
    os << ',' << n;
    auto v = trace.voltage(n);
    if (v.empty()) {
      all_found = false;
      v.assign(trace.size(), 0.0);
    }
    cols.push_back(std::move(v));
  }
  os << '\n';
  const auto& t = trace.times();
  os.precision(9);
  for (std::size_t k = 0; k < t.size(); ++k) {
    os << t[k];
    for (const auto& c : cols) os << ',' << c[k];
    os << '\n';
  }
  return all_found;
}

bool write_vcd(std::ostream& os, const Trace& trace,
               const std::vector<std::string>& nodes,
               long long timescale_fs) {
  bool all_found = true;
  os << "$date fetcam $end\n";
  os << "$version fetcam circuit simulator $end\n";
  os << "$timescale " << timescale_fs << " fs $end\n";
  os << "$scope module fetcam $end\n";
  std::vector<std::vector<double>> cols;
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    os << "$var real 64 " << vcd_id(k) << ' ' << vcd_name(nodes[k])
       << " $end\n";
    auto v = trace.voltage(nodes[k]);
    if (v.empty()) {
      all_found = false;
      v.assign(trace.size(), 0.0);
    }
    cols.push_back(std::move(v));
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  const auto& t = trace.times();
  const double unit = static_cast<double>(timescale_fs) * 1e-15;
  long long prev_ticks = -1;
  std::vector<double> last(nodes.size(),
                           std::numeric_limits<double>::quiet_NaN());
  for (std::size_t k = 0; k < t.size(); ++k) {
    const long long ticks = static_cast<long long>(std::llround(t[k] / unit));
    bool stamped = false;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (cols[c][k] == last[c]) continue;
      if (!stamped && ticks != prev_ticks) {
        os << '#' << ticks << '\n';
        prev_ticks = ticks;
      }
      stamped = true;
      os << 'r' << cols[c][k] << ' ' << vcd_id(c) << '\n';
      last[c] = cols[c][k];
    }
  }
  return all_found;
}

bool export_waveforms(const std::string& base_path, const Trace& trace,
                      const std::vector<std::string>& nodes) {
  std::ofstream csv(base_path + ".csv");
  std::ofstream vcd(base_path + ".vcd");
  if (!csv || !vcd) return false;
  const bool a = write_csv(csv, trace, nodes);
  const bool b = write_vcd(vcd, trace, nodes);
  return a && b;
}

}  // namespace fetcam::spice
