#include "spice/spice_export.hpp"

#include <fstream>
#include <sstream>

#include "devices/fefet.hpp"
#include "devices/mosfet.hpp"
#include "spice/elements.hpp"

namespace fetcam::spice {

namespace {

/// SPICE node name: ground is "0"; sanitize separators.
std::string nname(const Circuit& ckt, NodeId n) {
  if (n == kGround) return "0";
  std::string s = ckt.node_name(n);
  for (char& c : s) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return s;
}

std::string dname(const Device& dev) {
  std::string s = dev.name();
  for (char& c : s) {
    if (c == ' ' || c == '.' || c == '/') c = '_';
  }
  return s;
}

void emit_waveform(std::ostream& os, const Waveform& w) {
  const auto& pts = w.points();
  if (pts.size() == 1) {
    os << "DC " << pts.front().second;
    return;
  }
  os << "PWL(";
  for (std::size_t k = 0; k < pts.size(); ++k) {
    os << pts[k].first << ' ' << pts[k].second;
    if (k + 1 != pts.size()) os << ' ';
  }
  os << ')';
  if (w.period_s() > 0.0) {
    os << " ; period " << w.period_s() << "s (repeat manually in ngspice)";
  }
}

/// Forward-direction EKV current expression with `vg`, `vhi`, `vlo`, `vb`
/// as node-voltage expressions, in the NFET-transformed frame (sign applied
/// by the caller).  The gate drive is (vg - vlo) + gamma*(vb - vlo).
std::string ekv_expr(const dev::EkvParams& p, double vth, double gamma,
                     const std::string& vg, const std::string& vhi,
                     const std::string& vlo, const std::string& vb) {
  std::ostringstream os;
  const double denom = 2.0 * p.n * p.ut;
  // vov = (vg - vlo) + gamma (vb - vlo) - vth
  std::ostringstream vov;
  vov << "((" << vg << ")-(" << vlo << ")+" << gamma << "*((" << vb << ")-("
      << vlo << "))-" << vth << ")";
  std::ostringstream vds;
  vds << "((" << vhi << ")-(" << vlo << "))";
  // L(x) = ln(1+exp(x)); squared difference; mobility; CLM.
  os << p.is << " * (ln(1+exp(" << vov.str() << "/" << denom
     << "))^2 - ln(1+exp((" << vov.str() << "-" << p.n << "*" << vds.str()
     << ")/" << denom << "))^2)"
     << " * (1+" << p.lambda << "*" << vds.str() << ")"
     << " / (1+" << p.theta << "*" << p.ut << "*ln(1+exp(" << vov.str()
     << "/" << p.ut << ")))";
  return os.str();
}

/// Full bidirectional channel current D -> S with terminal swap, optionally
/// sign-mirrored for PFETs.
std::string channel_expr(const dev::EkvParams& p, double vth, double gamma,
                         bool pfet, const std::string& d,
                         const std::string& g, const std::string& s,
                         const std::string& b) {
  const std::string sg = pfet ? "(-v(" + g + "))" : "v(" + g + ")";
  const std::string sd = pfet ? "(-v(" + d + "))" : "v(" + d + ")";
  const std::string ss = pfet ? "(-v(" + s + "))" : "v(" + s + ")";
  const std::string sb = pfet ? "(-v(" + b + "))" : "v(" + b + ")";
  const std::string fwd = ekv_expr(p, vth, gamma, sg, sd, ss, sb);
  const std::string rev = ekv_expr(p, vth, gamma, sg, ss, sd, sb);
  std::ostringstream os;
  const char* sign = pfet ? "-1" : "1";
  // u() selects the conduction direction; both branches are evaluated but
  // the inactive one is multiplied by zero.
  os << sign << "*( u(" << sd << "-" << ss << ")*(" << fwd << ") - u(" << ss
     << "-" << sd << ")*(" << rev << ") )";
  return os.str();
}

void emit_mosfet(std::ostream& os, const Circuit& ckt, const dev::Mosfet& m) {
  const auto t = m.terminals();  // D G S B
  const std::string d = nname(ckt, t[0]), g = nname(ckt, t[1]),
                    s = nname(ckt, t[2]), b = nname(ckt, t[3]);
  const auto& p = m.params();
  const bool pfet = p.polarity == dev::Polarity::kP;
  os << "* mosfet " << m.name() << " (" << (pfet ? "P" : "N")
     << ", W=" << p.w << " L=" << p.l << ")\n";
  os << "B" << dname(m) << " " << d << " " << s << " I="
     << channel_expr(p.ekv(), p.vth0, p.gamma_b, pfet, d, g, s, b) << "\n";
  os << "C" << dname(m) << "_gs " << g << " " << s << " " << p.cgs() << "\n";
  os << "C" << dname(m) << "_gd " << g << " " << d << " " << p.cgd() << "\n";
  os << "C" << dname(m) << "_gb " << g << " " << b << " " << p.cgb() << "\n";
  os << "C" << dname(m) << "_db " << d << " " << b << " " << p.cjunction()
     << "\n";
  os << "C" << dname(m) << "_sb " << s << " " << b << " " << p.cjunction()
     << "\n";
}

void emit_fefet(std::ostream& os, const Circuit& ckt, const dev::FeFet& f) {
  const auto t = f.terminals();  // D FG S BG
  const std::string d = nname(ckt, t[0]), g = nname(ckt, t[1]),
                    s = nname(ckt, t[2]), b = nname(ckt, t[3]);
  const auto& p = f.params();
  const double vth = f.threshold_voltage();
  os << "* fefet " << f.name() << " (polarization frozen: P/Ps="
     << f.normalized_polarization() << ", Vth=" << vth << ")\n";
  os << "B" << dname(f) << " " << d << " " << s << " I="
     << channel_expr(p.mos.ekv(), vth, p.back_coupling, false, d, g, s, b)
     << "\n";
  os << "R" << dname(f) << "_leak " << d << " " << s << " "
     << 1.0 / p.g_leak << "\n";
  const double cfg = 0.5 * p.mos.cgate() + p.mos.cov_per_w * p.mos.w;
  os << "C" << dname(f) << "_fgs " << g << " " << s << " " << cfg << "\n";
  os << "C" << dname(f) << "_fgd " << g << " " << d << " " << cfg << "\n";
  os << "C" << dname(f) << "_bgs " << b << " " << s << " "
     << p.c_bg_factor * p.mos.cgate() << "\n";
  os << "C" << dname(f) << "_db " << d << " " << b << " "
     << p.mos.cjunction() << "\n";
  os << "C" << dname(f) << "_sb " << s << " " << b << " "
     << p.cj_source_per_w * p.mos.w << "\n";
}

}  // namespace

bool export_ngspice(std::ostream& os, const Circuit& ckt,
                    const SpiceExportOptions& opts) {
  os << "* " << opts.title << "\n";
  os << "* exported by fetcam; EKV channels as behavioral B-sources;\n";
  os << "* ferroelectric polarization frozen at export time (reads only).\n";
  bool ok = true;
  for (const auto& dev : ckt.devices()) {
    const auto kind = dev->kind();
    if (kind == "resistor") {
      const auto* r = dynamic_cast<const Resistor*>(dev.get());
      const auto t = r->terminals();
      os << "R" << dname(*r) << " " << nname(ckt, t[0]) << " "
         << nname(ckt, t[1]) << " " << r->resistance() << "\n";
    } else if (kind == "capacitor") {
      const auto* c = dynamic_cast<const Capacitor*>(dev.get());
      const auto t = c->terminals();
      os << "C" << dname(*c) << " " << nname(ckt, t[0]) << " "
         << nname(ckt, t[1]) << " " << c->capacitance() << "\n";
    } else if (kind == "vsource") {
      const auto* v = dynamic_cast<const VoltageSource*>(dev.get());
      const auto t = v->terminals();
      os << "V" << dname(*v) << " " << nname(ckt, t[0]) << " "
         << nname(ckt, t[1]) << " ";
      emit_waveform(os, v->waveform());
      os << "\n";
    } else if (kind == "isource") {
      const auto* i = dynamic_cast<const CurrentSource*>(dev.get());
      const auto t = i->terminals();
      os << "I" << dname(*i) << " " << nname(ckt, t[0]) << " "
         << nname(ckt, t[1]) << " ";
      emit_waveform(os, i->waveform());
      os << "\n";
    } else if (kind == "vcvs") {
      const auto* e = dynamic_cast<const Vcvs*>(dev.get());
      const auto t = e->terminals();
      os << "E" << dname(*e) << " " << nname(ckt, t[0]) << " "
         << nname(ckt, t[1]) << " " << nname(ckt, t[2]) << " "
         << nname(ckt, t[3]) << " " << e->gain() << "\n";
    } else if (kind == "mosfet") {
      emit_mosfet(os, ckt, *dynamic_cast<const dev::Mosfet*>(dev.get()));
    } else if (kind == "fefet") {
      emit_fefet(os, ckt, *dynamic_cast<const dev::FeFet*>(dev.get()));
    } else {
      os << "* UNSUPPORTED device kind: " << kind << " (" << dev->name()
         << ")\n";
      ok = false;
    }
  }
  if (opts.tran_stop > 0.0 && opts.tran_step > 0.0) {
    os << ".tran " << opts.tran_step << " " << opts.tran_stop << "\n";
  }
  if (!opts.save_nodes.empty()) {
    os << ".save";
    for (const auto& n : opts.save_nodes) os << " v(" << n << ")";
    os << "\n";
  }
  os << ".end\n";
  return ok;
}

bool export_ngspice_file(const std::string& path, const Circuit& ckt,
                         const SpiceExportOptions& opts) {
  std::ofstream f(path);
  if (!f) return false;
  return export_ngspice(f, ckt, opts);
}

}  // namespace fetcam::spice
