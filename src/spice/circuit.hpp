// Circuit graph, device interface, and MNA stamping context.
//
// Conventions
// -----------
// * Node 0 is ground.  System unknowns are ordered [node voltages (1..N-1),
//   branch currents].  Ground rows/columns are silently discarded by the
//   Stamper so device code never special-cases ground.
// * The nonlinear system is written in residual form: for every non-ground
//   node n,  f_n(x) = sum of currents *leaving* n through all devices = 0.
//   A device adding current I flowing a -> b contributes +I to f_a, -I to
//   f_b, and the matching dI/dV entries to the Jacobian.
// * Voltage-source-like devices own one branch unknown each: the current
//   flowing from the + terminal through the source to the - terminal.
// * Devices are stateless inside one Newton solve (stamp() is const); all
//   history (capacitor charge, ferroelectric polarization) updates happen in
//   commit_step() after the timestep converged.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"
#include "spice/waveform.hpp"

namespace fetcam::spice {

using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class AnalysisMode {
  kOperatingPoint,  ///< capacitors open, inductive/memory state frozen
  kTransient,       ///< companion models active
};

/// Per-evaluation context passed to Device::stamp().
struct EvalContext {
  AnalysisMode mode = AnalysisMode::kOperatingPoint;
  /// End time of the step being solved (seconds); 0 for OP.
  double time = 0.0;
  /// Step size; 0 for OP.
  double dt = 0.0;
  /// Conductance shunted from every nonlinear device node to ground during
  /// gmin continuation; devices with exponential I-V must add it themselves
  /// via Stamper::add_gmin().
  double gmin = 0.0;
  /// Source ramping factor in [0, 1] for source-stepping continuation;
  /// independent sources scale their value by this.
  double source_scale = 1.0;
  /// Integration scheme for charge-storage companion models.
  bool trapezoidal = false;
};

class Circuit;

/// Destination for Jacobian entries: dense matrix for small systems,
/// triplet accumulator or slot-resolved flat CSC feeding the sparse LU for
/// large ones.  Devices stamp through this interface and never know which
/// solver runs.  Aliased to the numeric-layer interface so the Newton
/// drivers can hand their own sinks (e.g. the StampedCsc replay sink) to
/// circuit assembly without a dependency inversion.
using JacobianSink = num::JacobianSink;

class DenseJacobianSink final : public JacobianSink {
 public:
  explicit DenseJacobianSink(num::Matrix& m) : m_(m) {}
  void add(num::Index r, num::Index c, double v) override { m_(r, c) += v; }

 private:
  num::Matrix& m_;
};

class TripletJacobianSink final : public JacobianSink {
 public:
  explicit TripletJacobianSink(num::TripletAccumulator& t) : t_(t) {}
  void add(num::Index r, num::Index c, double v) override { t_.add(r, c, v); }

 private:
  num::TripletAccumulator& t_;
};

/// Write access to the MNA Jacobian and residual for one Newton iteration,
/// plus read access to the candidate solution.
class Stamper {
 public:
  Stamper(const Circuit& ckt, const num::Vector& x, JacobianSink& jac,
          num::Vector& residual);

  /// Candidate voltage of a node (0 for ground).
  double v(NodeId n) const;
  /// Candidate current of a branch unknown.
  double branch_current(num::Index branch_index) const;

  /// Linear conductance g between nodes a and b: stamps both the Jacobian
  /// and the residual contribution g*(va - vb).
  void stamp_conductance(NodeId a, NodeId b, double g);

  /// Nonlinear current I flowing a -> b with partial derivatives already
  /// linearized by the caller: adds I to the residual and the given
  /// dI/d v(node) entries to rows a (+) and b (-).
  void add_current(NodeId a, NodeId b, double current);
  void add_current_derivative(NodeId a, NodeId b, NodeId wrt, double dIdV);

  /// gmin shunt from node to ground (no residual bias at v = 0).
  void add_gmin(NodeId n, double gmin);

  /// Branch (voltage-source row) helpers.  `branch_index` is the device's
  /// branch base + local index as assigned by Circuit::finalize().
  void stamp_branch_voltage(num::Index branch_index, NodeId plus, NodeId minus,
                            double target_voltage);
  /// Same KVL row but with extra dependence on other node voltages (VCVS):
  /// f_br = v(plus) - v(minus) - gain*(v(cp) - v(cm)).
  void stamp_branch_vcvs(num::Index branch_index, NodeId plus, NodeId minus,
                         NodeId ctrl_plus, NodeId ctrl_minus, double gain);

 private:
  num::Index sys_index_node(NodeId n) const;  // -1 for ground
  num::Index sys_index_branch(num::Index b) const;

  const Circuit& ckt_;
  const num::Vector& x_;
  JacobianSink& jac_;
  num::Vector& residual_;
};

/// Read-only view of a converged solution, used by commit_step() and probes.
class Solution {
 public:
  Solution(const Circuit& ckt, const num::Vector& x) : ckt_(ckt), x_(x) {}
  double v(NodeId n) const;
  double branch_current(num::Index branch_index) const;
  const num::Vector& raw() const { return x_; }

 private:
  const Circuit& ckt_;
  const num::Vector& x_;
};

/// Base class for all circuit elements and device models.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }
  virtual std::string_view kind() const = 0;

  /// Number of branch-current unknowns this device owns.
  virtual int branch_count() const { return 0; }

  /// Contribute to the Jacobian/residual at candidate solution in `st`.
  virtual void stamp(const EvalContext& ctx, Stamper& st) const = 0;

  /// Called once after the operating point converged, before transient.
  virtual void initialize_state(const EvalContext& ctx, const Solution& sol) {
    (void)ctx;
    (void)sol;
  }

  /// Called after each converged transient step to roll history forward.
  virtual void commit_step(const EvalContext& ctx, const Solution& sol) {
    (void)ctx;
    (void)sol;
  }

  /// Source breakpoints in [0, t_stop] (edges the transient engine must hit).
  virtual std::vector<double> breakpoints(double t_stop) const {
    (void)t_stop;
    return {};
  }

  /// One-line human-readable netlist entry for debugging dumps.
  virtual std::string describe(const Circuit& ckt) const;

  num::Index branch_base() const { return branch_base_; }
  void set_branch_base(num::Index b) { branch_base_ = b; }

  /// Terminal nodes, for netlist printing and connectivity checks.
  virtual std::vector<NodeId> terminals() const = 0;

 private:
  std::string name_;
  num::Index branch_base_ = -1;
};

/// A flat netlist: named nodes plus an ordered list of devices.
class Circuit {
 public:
  Circuit();

  /// Get or create a named node.
  NodeId node(std::string_view name);
  /// Create a fresh internal node with a unique name derived from `prefix`.
  NodeId internal_node(std::string_view prefix);
  std::optional<NodeId> find_node(std::string_view name) const;
  const std::string& node_name(NodeId n) const;
  /// Total node count including ground.
  int node_count() const { return static_cast<int>(node_names_.size()); }

  /// Add a device; returns a reference with the concrete type preserved.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    add(std::move(dev));
    return ref;
  }
  Device& add(std::unique_ptr<Device> dev);

  std::span<const std::unique_ptr<Device>> devices() const { return devices_; }

  /// Look up a device by name; nullptr when absent.
  Device* find_device(std::string_view name) const;

  /// Assign branch indices and freeze the system size.  Called automatically
  /// by the analyses; idempotent until the netlist changes.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Unknown count: (nodes - 1) + branches.  Valid after finalize().
  num::Index system_size() const { return system_size_; }
  num::Index branch_count() const { return branch_count_; }

  /// System index of a node's voltage unknown (-1 for ground).
  num::Index node_sys_index(NodeId n) const { return n == kGround ? -1 : n - 1; }
  /// System index of a branch unknown.
  num::Index branch_sys_index(num::Index branch) const {
    return node_count() - 1 + branch;
  }

  /// All device breakpoints merged and sorted, for the transient engine.
  std::vector<double> breakpoints(double t_stop) const;

 private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_lookup_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, Device*> device_lookup_;
  num::Index branch_count_ = 0;
  num::Index system_size_ = 0;
  bool finalized_ = false;
  int internal_counter_ = 0;
};

}  // namespace fetcam::spice
