// Human-readable netlist dump and basic connectivity lint.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace fetcam::spice {

/// Multi-line listing of every device with its terminal node names.
std::string dump_netlist(const Circuit& ckt);

/// Names of nodes that appear in fewer than two device terminals (likely
/// floating); ground is exempt.
std::vector<std::string> find_floating_nodes(const Circuit& ckt);

}  // namespace fetcam::spice
