#include "obs/obs.hpp"

#include <chrono>
#include <cstdlib>

namespace fetcam::obs {

namespace detail {

namespace {
int level_from_env() {
  const char* e = std::getenv("FETCAM_OBS");
  Level l = Level::kOff;
  if (e != nullptr) parse_level(e, l);
  return static_cast<int>(l);
}
}  // namespace

std::atomic<int> g_level{level_from_env()};

}  // namespace detail

void set_level(Level l) {
  detail::g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

bool parse_level(std::string_view s, Level& out) {
  if (s == "off") out = Level::kOff;
  else if (s == "metrics") out = Level::kMetrics;
  else if (s == "trace") out = Level::kTrace;
  else return false;
  return true;
}

std::string_view to_string(Level l) {
  switch (l) {
    case Level::kOff: return "off";
    case Level::kMetrics: return "metrics";
    case Level::kTrace: return "trace";
  }
  return "off";
}

double now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch)
      .count();
}

}  // namespace fetcam::obs
