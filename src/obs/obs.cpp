#include "obs/obs.hpp"

#include <chrono>
#include <cstdlib>

namespace fetcam::obs {

namespace detail {

namespace {
int level_from_env() {
  const char* e = std::getenv("FETCAM_OBS");
  Level l = Level::kOff;
  if (e != nullptr) parse_level(e, l);
  return static_cast<int>(l);
}
}  // namespace

std::atomic<int> g_level{level_from_env()};

}  // namespace detail

void set_level(Level l) {
  detail::g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

bool parse_level(std::string_view s, Level& out) {
  if (s == "off") out = Level::kOff;
  else if (s == "metrics") out = Level::kMetrics;
  else if (s == "trace") out = Level::kTrace;
  else return false;
  return true;
}

std::string_view to_string(Level l) {
  switch (l) {
    case Level::kOff: return "off";
    case Level::kMetrics: return "metrics";
    case Level::kTrace: return "trace";
  }
  return "off";
}

namespace {
std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

}  // namespace fetcam::obs
