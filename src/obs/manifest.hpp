// Run manifests: one JSON document per eval/bench run recording what was
// run (tool + command line), on what (git SHA, build type, compiler,
// flags, thread count), with which seeds, how long each phase took, and a
// solver-health summary pulled from the MetricsRegistry (total solves,
// which continuation strategies rescued corners, how many failed).
//
// Schema: docs/OBSERVABILITY.md.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace fetcam::obs {

/// Build identity burned in at configure time (CMake defines FETCAM_GIT_SHA
/// and friends on the obs library; "unknown" when unavailable).
struct BuildInfo {
  static const char* git_sha();
  static const char* build_type();
  static const char* compiler();
  static const char* cxx_flags();
};

class RunManifest {
 public:
  RunManifest(std::string tool, std::string command_line);

  void set_threads(int n) { threads_ = n; }
  void set_level(Level l) { level_ = l; }
  /// Free-form key/value (RNG seeds, sample counts, sweep sizes...).
  /// Insertion order is preserved in the JSON.
  void add_info(std::string key, std::string value);
  void add_info(std::string key, long long value);
  /// Record a completed phase's wall time.
  void add_phase(std::string name, double seconds);

  /// Serialize, embedding the current solver-health counters (every
  /// "newton.", "lu.", "op.", "transient.", "dcsweep.", "eval." counter in
  /// the registry, in name order).
  std::string to_json() const;
  bool write(const std::string& path) const;

 private:
  std::string tool_;
  std::string command_line_;
  int threads_ = 0;
  Level level_ = Level::kOff;
  std::vector<std::pair<std::string, std::string>> info_;
  std::vector<std::pair<std::string, double>> phases_;
};

/// RAII wall-clock phase timer: adds "<name>": seconds to the manifest on
/// destruction.
class PhaseTimer {
 public:
  PhaseTimer(RunManifest& manifest, std::string name);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  RunManifest& manifest_;
  std::string name_;
  double t0_us_;
};

}  // namespace fetcam::obs
