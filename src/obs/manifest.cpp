#include "obs/manifest.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"

#ifndef FETCAM_GIT_SHA
#define FETCAM_GIT_SHA "unknown"
#endif
#ifndef FETCAM_BUILD_TYPE
#define FETCAM_BUILD_TYPE "unknown"
#endif
#ifndef FETCAM_COMPILER
#define FETCAM_COMPILER "unknown"
#endif
#ifndef FETCAM_CXX_FLAGS
#define FETCAM_CXX_FLAGS ""
#endif

namespace fetcam::obs {

const char* BuildInfo::git_sha() { return FETCAM_GIT_SHA; }
const char* BuildInfo::build_type() { return FETCAM_BUILD_TYPE; }
const char* BuildInfo::compiler() { return FETCAM_COMPILER; }
const char* BuildInfo::cxx_flags() { return FETCAM_CXX_FLAGS; }

RunManifest::RunManifest(std::string tool, std::string command_line)
    : tool_(std::move(tool)), command_line_(std::move(command_line)) {}

void RunManifest::add_info(std::string key, std::string value) {
  info_.emplace_back(std::move(key), std::move(value));
}

void RunManifest::add_info(std::string key, long long value) {
  info_.emplace_back(std::move(key), std::to_string(value));
}

void RunManifest::add_phase(std::string name, double seconds) {
  phases_.emplace_back(std::move(name), seconds);
}

namespace {

bool is_solver_health(const std::string& name) {
  for (const char* prefix :
       {"newton.", "lu.", "op.", "transient.", "dcsweep.", "eval.",
        "engine."}) {
    if (name.compare(0, std::strlen(prefix), prefix) == 0) return true;
  }
  return false;
}

}  // namespace

std::string RunManifest::to_json() const {
  using detail::json_escape;
  using detail::json_number;
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"" << json_escape(tool_) << "\",\n";
  os << "  \"command\": \"" << json_escape(command_line_) << "\",\n";
  os << "  \"git_sha\": \"" << json_escape(BuildInfo::git_sha()) << "\",\n";
  os << "  \"build_type\": \"" << json_escape(BuildInfo::build_type())
     << "\",\n";
  os << "  \"compiler\": \"" << json_escape(BuildInfo::compiler()) << "\",\n";
  os << "  \"cxx_flags\": \"" << json_escape(BuildInfo::cxx_flags())
     << "\",\n";
  os << "  \"threads\": " << threads_ << ",\n";
  os << "  \"obs_level\": \"" << to_string(level_) << "\",\n";
  os << "  \"info\": {";
  for (std::size_t i = 0; i < info_.size(); ++i) {
    os << (i > 0 ? ",\n" : "\n") << "    \"" << json_escape(info_[i].first)
       << "\": \"" << json_escape(info_[i].second) << "\"";
  }
  os << (info_.empty() ? "" : "\n  ") << "},\n";
  os << "  \"phases_s\": {";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    os << (i > 0 ? ",\n" : "\n") << "    \"" << json_escape(phases_[i].first)
       << "\": " << json_number(phases_[i].second);
  }
  os << (phases_.empty() ? "" : "\n  ") << "},\n";
  os << "  \"solver_health\": {";
  bool first = true;
  std::uint64_t full_factors = 0;
  std::uint64_t refactors = 0;
  for (const auto& [name, value] :
       MetricsRegistry::instance().counter_values()) {
    if (!is_solver_health(name)) continue;
    if (name == "lu.sparse.factors") full_factors = value;
    if (name == "lu.sparse.refactors") refactors = value;
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  // Derived: fraction of sparse factorizations served by the numeric-only
  // refactor path (the KLU-style reuse hit rate).
  if (full_factors + refactors > 0) {
    os << (first ? "\n" : ",\n") << "    \"lu.sparse.refactor_hit_rate\": "
       << json_number(static_cast<double>(refactors) /
                      static_cast<double>(full_factors + refactors));
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n";
  os << "}\n";
  return os.str();
}

bool RunManifest::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

PhaseTimer::PhaseTimer(RunManifest& manifest, std::string name)
    : manifest_(manifest), name_(std::move(name)), t0_us_(now_us()) {}

PhaseTimer::~PhaseTimer() {
  manifest_.add_phase(std::move(name_), (now_us() - t0_us_) * 1e-6);
}

}  // namespace fetcam::obs
