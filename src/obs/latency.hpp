// Lock-free service latency histograms (the telemetry layer under the
// engine's per-stage attribution, docs/OBSERVABILITY.md "Service metrics").
//
// A LatencyRecorder is a fixed-point log2-bucketed histogram sharded
// across cache-line-aligned slots: record_ns() is a handful of relaxed
// atomic RMWs on the calling thread's shard — no doubles, no mutex, no
// allocation — so it is safe on the million-qps hot path at any level.
// snapshot() merges the shards into exact integer counts and extracts
// p50 / p95 / p99 / p99.9 by cumulative walk over the bucket bounds.
//
// Bucketing: values below 2^kSubBits land in exact unit buckets; above
// that each power-of-two octave is split into 2^kSubBits linear
// sub-buckets (HdrHistogram-style), bounding the relative quantization
// error of a reported percentile to one sub-bucket (< 2^-kSubBits of the
// value).  The bucket layout is a pure function of the value, so merged
// counts are bit-identical regardless of which thread recorded what.
//
//   static obs::LatencyRecorder& lat =
//       obs::MetricsRegistry::instance().latency("engine.stage.match");
//   if (obs::metrics_on()) {
//     const std::uint64_t t0 = obs::now_ns();
//     ...  // timed region
//     lat.record_ns(obs::now_ns() - t0);
//   }
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace fetcam::obs {

/// Merged view of a LatencyRecorder at one instant.  All fields are exact
/// integer nanoseconds except the *_us helpers, which convert for display.
struct LatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;

  double mean_us() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) /
                            (1e3 * static_cast<double>(count));
  }
  double p50_us() const { return static_cast<double>(p50_ns) / 1e3; }
  double p95_us() const { return static_cast<double>(p95_ns) / 1e3; }
  double p99_us() const { return static_cast<double>(p99_ns) / 1e3; }
  double p999_us() const { return static_cast<double>(p999_ns) / 1e3; }
  double max_us() const { return static_cast<double>(max_ns) / 1e3; }
};

class LatencyRecorder {
 public:
  /// Linear sub-buckets per octave = 2^kSubBits.
  static constexpr int kSubBits = 3;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;
  /// Bucket count covering the full uint64 range: unit buckets
  /// [0, 2^kSubBits) plus (64 - kSubBits) octaves x 2^kSubBits sub-buckets.
  static constexpr std::size_t kBucketCount =
      ((64 - kSubBits) << kSubBits) + kSubCount;
  /// Shards threads hash into (power of two).  More shards = less false
  /// sharing under concurrent recording; merged counts are unaffected.
  static constexpr std::size_t kShards = 8;

  LatencyRecorder() = default;
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  /// Hot path: relaxed fetch_adds on this thread's shard.  Never blocks.
  void record_ns(std::uint64_t ns) {
    Shard& s = shards_[shard_index()];
    s.buckets[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t prev = s.max.load(std::memory_order_relaxed);
    while (prev < ns && !s.max.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed)) {
    }
  }

  /// Merge every shard and extract count / sum / max / percentiles.
  LatencySnapshot snapshot() const;

  /// Merged per-bucket counts (tests: bit-exactness under concurrency).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Zero every shard (not atomic with respect to concurrent recorders —
  /// test / per-run isolation only, like MetricsRegistry::reset()).
  void reset();

  // Bucket layout (static so tests can cross-check the mapping).
  static std::size_t bucket_index(std::uint64_t ns);
  /// Smallest value mapping to bucket i.
  static std::uint64_t bucket_lower(std::size_t i);
  /// Largest value mapping to bucket i (the reported percentile value —
  /// conservative: a percentile never under-reports its bucket).
  static std::uint64_t bucket_upper(std::size_t i);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  static std::size_t shard_index();

  std::array<Shard, kShards> shards_{};
};

/// Periodic deterministic JSON exporter over the process registry: each
/// capture reports the DELTA window since the previous capture (totals,
/// per-window deltas, rates) for counters and latency recorders, plus
/// current gauge values.  Keys iterate sorted registry maps, so the JSON
/// key order is byte-stable run to run; only the rate values (wall-clock
/// dependent) vary.  Not thread-safe: callers serialize captures (the CLI
/// sampler thread and the server completion thread each own one).
class WindowedSnapshot {
 public:
  WindowedSnapshot();

  /// Capture a window ending now.  `now_s` overrides the clock for tests
  /// (< 0 = use obs::now_us()).  First capture windows from construction.
  std::string capture_json(double now_s = -1.0);

 private:
  double prev_s_ = 0.0;
  std::uint64_t windows_ = 0;
  std::map<std::string, std::uint64_t> prev_counters_;
  std::map<std::string, std::uint64_t> prev_latency_counts_;
};

}  // namespace fetcam::obs
