// Minimal JSON emission helpers shared by the obs writers.  Not a general
// JSON library — just enough to emit metric names, command lines, and
// numbers in a stable, locale-independent format.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace fetcam::obs::detail {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips doubles and never emits locale-dependent separators.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s = buf;
  // JSON requires a leading digit ("inf"/"nan" handled above).
  return s;
}

}  // namespace fetcam::obs::detail
