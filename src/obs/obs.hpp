// Process-wide observability level control.
//
// Every instrumentation site in the simulator is gated on obs::level():
//   kOff      no metrics, no spans — the hot paths pay one relaxed atomic
//             load per guarded block and nothing else (the default, so
//             baseline performance is untouched);
//   kMetrics  counters / gauges / histograms accumulate (obs/metrics.hpp);
//   kTrace    metrics plus Chrome-trace spans (obs/trace.hpp).
//
// The level starts from the FETCAM_OBS environment variable ("off",
// "metrics", "trace"; default off) and can be overridden programmatically
// (the fetcam_cli --obs-level flag).  Compiling with -DFETCAM_OBS_DISABLED
// (cmake -DFETCAM_OBS=OFF) pins level() to kOff as a compile-time constant
// so the optimizer removes every guarded block — the reference build for
// measuring off-mode overhead (see docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace fetcam::obs {

enum class Level : int { kOff = 0, kMetrics = 1, kTrace = 2 };

namespace detail {
extern std::atomic<int> g_level;
}

#ifdef FETCAM_OBS_DISABLED
inline Level level() { return Level::kOff; }
#else
inline Level level() {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}
#endif

/// True when counters/histograms should accumulate.
inline bool metrics_on() { return level() >= Level::kMetrics; }
/// True when ScopedSpan should record trace events.
inline bool trace_on() { return level() >= Level::kTrace; }

/// Set the process-wide level (no-op observable effect under
/// FETCAM_OBS_DISABLED).
void set_level(Level l);

/// Parse "off" / "metrics" / "trace".  Returns false on anything else.
bool parse_level(std::string_view s, Level& out);

std::string_view to_string(Level l);

/// Monotonic microseconds since the process's trace epoch (first call).
/// Shared clock for span timestamps and metric timers.
double now_us();

/// Monotonic integer nanoseconds since the same trace epoch — the
/// fixed-point clock for LatencyRecorder stage timings (no doubles on the
/// hot path).
std::uint64_t now_ns();

}  // namespace fetcam::obs
