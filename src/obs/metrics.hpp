// Thread-safe solver-health metrics: counters, gauges, and fixed-bucket
// histograms in a process-wide registry with deterministic ordered export.
//
// Usage pattern at an instrumentation site (one magic-static registration,
// then lock-free relaxed atomics on the hot path):
//
//   static obs::Counter& solves =
//       obs::MetricsRegistry::instance().counter("newton.solves");
//   if (obs::metrics_on()) solves.add();
//
// Determinism: count-valued metrics (iterations, rejections, fallbacks) are
// pure sums of schedule-independent work, so their totals are identical at
// any thread count; only wall-time histograms vary run to run.  Export
// iterates a std::map, so the JSON / table ordering is byte-stable
// regardless of registration order.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency.hpp"
#include "obs/obs.hpp"

namespace fetcam::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// add(1) gated on metrics_on() — for sites without their own guard.
  void inc() {
    if (metrics_on()) add(1);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins double value (thread counts, configured sizes, ...).
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed-bucket histogram.  Bucket i counts observations with
/// value <= bounds[i] (first matching bound); the final implicit bucket
/// counts everything above the last bound.  Bounds are fixed at
/// registration, so merged counts are schedule-independent.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t bucket_total() const { return bounds_.size() + 1; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Exponential bucket bounds: start, start*factor, ... (n values).
std::vector<double> exponential_bounds(double start, double factor, int n);
/// Linear bucket bounds: start, start+step, ... (n values).
std::vector<double> linear_bounds(double start, double step, int n);

/// Process-wide metric registry.  Registration takes a mutex (once per call
/// site thanks to magic statics); the returned references are stable for the
/// process lifetime, and value access is lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration wins: later calls with the same name return the
  /// existing histogram and ignore `bounds`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Lock-free log2-bucketed latency recorder (obs/latency.hpp) — the
  /// service-metrics counterpart of histogram() for hot-path timings.
  LatencyRecorder& latency(std::string_view name);

  /// All counter name/value pairs in name order (used by run manifests to
  /// assemble the solver-health summary).
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  /// All gauge name/value pairs in name order.
  std::vector<std::pair<std::string, double>> gauge_values() const;
  /// Merged snapshots of every latency recorder, in name order.
  std::vector<std::pair<std::string, LatencySnapshot>> latency_snapshots()
      const;

  /// Deterministic JSON export: top-level {"counters", "gauges",
  /// "histograms", "latencies"}, each object sorted by metric name.
  std::string to_json() const;
  /// Human-readable aligned table of every metric.
  std::string to_table() const;
  bool write_json(const std::string& path) const;

  /// Zero every value (registrations survive).  Test / per-run isolation.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyRecorder>, std::less<>>
      latencies_;
};

}  // namespace fetcam::obs
