#include "obs/latency.hpp"

#include <bit>
#include <cstdio>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"

namespace fetcam::obs {

std::size_t LatencyRecorder::bucket_index(std::uint64_t ns) {
  if (ns < kSubCount) return static_cast<std::size_t>(ns);
  const int msb = 63 - std::countl_zero(ns);
  const std::uint64_t sub = (ns >> (msb - kSubBits)) & (kSubCount - 1);
  return ((static_cast<std::size_t>(msb) - kSubBits + 1) << kSubBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyRecorder::bucket_lower(std::size_t i) {
  if (i < kSubCount) return i;
  const std::size_t group = i >> kSubBits;
  const std::uint64_t sub = i & (kSubCount - 1);
  const int msb = static_cast<int>(group) + kSubBits - 1;
  return (1ull << msb) + (sub << (msb - kSubBits));
}

std::uint64_t LatencyRecorder::bucket_upper(std::size_t i) {
  if (i + 1 >= kBucketCount) return ~0ull;
  return bucket_lower(i + 1) - 1;
}

std::size_t LatencyRecorder::shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id & (kShards - 1);
}

std::vector<std::uint64_t> LatencyRecorder::bucket_counts() const {
  std::vector<std::uint64_t> merged(kBucketCount, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      merged[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

namespace {

/// Smallest recorded value with at least `rank` observations at or below
/// it, reported as its bucket's upper bound (clamped to the observed max).
std::uint64_t percentile_from(const std::vector<std::uint64_t>& buckets,
                              std::uint64_t count, std::uint64_t max_ns,
                              std::uint64_t q_num, std::uint64_t q_den) {
  if (count == 0) return 0;
  // rank = ceil(count * q) in [1, count]; 128-bit so count can't overflow.
  unsigned __int128 prod =
      static_cast<unsigned __int128>(count) * q_num + (q_den - 1);
  std::uint64_t rank = static_cast<std::uint64_t>(prod / q_den);
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      const std::uint64_t upper = LatencyRecorder::bucket_upper(i);
      return upper < max_ns ? upper : max_ns;
    }
  }
  return max_ns;
}

}  // namespace

LatencySnapshot LatencyRecorder::snapshot() const {
  LatencySnapshot snap;
  const std::vector<std::uint64_t> merged = bucket_counts();
  for (const Shard& s : shards_) {
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum_ns += s.sum.load(std::memory_order_relaxed);
    const std::uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > snap.max_ns) snap.max_ns = m;
  }
  snap.p50_ns = percentile_from(merged, snap.count, snap.max_ns, 50, 100);
  snap.p95_ns = percentile_from(merged, snap.count, snap.max_ns, 95, 100);
  snap.p99_ns = percentile_from(merged, snap.count, snap.max_ns, 99, 100);
  snap.p999_ns = percentile_from(merged, snap.count, snap.max_ns, 999, 1000);
  return snap;
}

void LatencyRecorder::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

WindowedSnapshot::WindowedSnapshot() : prev_s_(now_us() / 1e6) {}

std::string WindowedSnapshot::capture_json(double now_s) {
  using detail::json_escape;
  using detail::json_number;
  if (now_s < 0.0) now_s = now_us() / 1e6;
  double window_s = now_s - prev_s_;
  if (window_s <= 0.0) window_s = 0.0;
  const double inv_window = window_s > 0.0 ? 1.0 / window_s : 0.0;
  auto& reg = MetricsRegistry::instance();

  std::string out = "{\n  \"schema\": \"fetcam.window.v1\",\n";
  out += "  \"window\": " + std::to_string(++windows_) + ",\n";
  out += "  \"window_s\": " + json_number(window_s) + ",\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, total] : reg.counter_values()) {
    const std::uint64_t prev = prev_counters_[name];
    const std::uint64_t delta = total - prev;
    prev_counters_[name] = total;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"total\": " +
           std::to_string(total) + ", \"delta\": " + std::to_string(delta) +
           ", \"rate_per_s\": " +
           json_number(static_cast<double>(delta) * inv_window) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : reg.gauge_values()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"latencies\": {";
  first = true;
  for (const auto& [name, snap] : reg.latency_snapshots()) {
    const std::uint64_t prev = prev_latency_counts_[name];
    const std::uint64_t delta = snap.count - prev;
    prev_latency_counts_[name] = snap.count;
    out += first ? "\n" : ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"delta\": %llu, ",
                  static_cast<unsigned long long>(snap.count),
                  static_cast<unsigned long long>(delta));
    out += "    \"" + json_escape(name) + "\": " + buf;
    out += "\"rate_per_s\": " +
           json_number(static_cast<double>(delta) * inv_window) +
           ", \"p50_us\": " + json_number(snap.p50_us()) +
           ", \"p95_us\": " + json_number(snap.p95_us()) +
           ", \"p99_us\": " + json_number(snap.p99_us()) +
           ", \"p999_us\": " + json_number(snap.p999_us()) +
           ", \"max_us\": " + json_number(snap.max_us()) +
           ", \"mean_us\": " + json_number(snap.mean_us()) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";

  prev_s_ = now_s;
  return out;
}

}  // namespace fetcam::obs
