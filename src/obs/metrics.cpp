#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json_util.hpp"

namespace fetcam::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_.push_back(1.0);
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  // First bound >= v; everything above the last bound lands in overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS-accumulated double sum.
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = std::bit_cast<double>(old) + v;
    if (sum_bits_.compare_exchange_weak(old,
                                        std::bit_cast<std::uint64_t>(updated),
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(std::bit_cast<std::uint64_t>(0.0),
                  std::memory_order_relaxed);
}

std::vector<double> exponential_bounds(double start, double factor, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(n, 0)));
  double v = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> linear_bounds(double start, double step, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) out.push_back(start + step * i);
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed:
  // instrumented statics in other TUs may outlive any destruction order.
  return *r;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

LatencyRecorder& MetricsRegistry::latency(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  if (it == latencies_.end()) {
    it = latencies_
             .emplace(std::string(name), std::make_unique<LatencyRecorder>())
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, LatencySnapshot>>
MetricsRegistry::latency_snapshots() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, LatencySnapshot>> out;
  out.reserve(latencies_.size());
  for (const auto& [name, l] : latencies_) {
    out.emplace_back(name, l->snapshot());
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << detail::json_escape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << detail::json_escape(name)
       << "\": " << detail::json_number(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << detail::json_escape(name)
       << "\": {\"count\": " << h->count()
       << ", \"sum\": " << detail::json_number(h->sum()) << ", \"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      os << (i > 0 ? ", " : "") << detail::json_number(h->bounds()[i]);
    }
    os << "], \"buckets\": [";
    for (std::size_t i = 0; i < h->bucket_total(); ++i) {
      os << (i > 0 ? ", " : "") << h->bucket_count(i);
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"latencies\": {";
  first = true;
  for (const auto& [name, l] : latencies_) {
    const LatencySnapshot s = l->snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << detail::json_escape(name)
       << "\": {\"count\": " << s.count
       << ", \"p50_us\": " << detail::json_number(s.p50_us())
       << ", \"p95_us\": " << detail::json_number(s.p95_us())
       << ", \"p99_us\": " << detail::json_number(s.p99_us())
       << ", \"p999_us\": " << detail::json_number(s.p999_us())
       << ", \"max_us\": " << detail::json_number(s.max_us())
       << ", \"mean_us\": " << detail::json_number(s.mean_us()) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

namespace {

std::string format_bound(double b) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", b);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_table() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  std::size_t width = 8;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, g] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, l] : latencies_) {
    width = std::max(width, name.size());
  }
  const auto pad = [&](const std::string& s) {
    return s + std::string(width + 2 - s.size(), ' ');
  };
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, c] : counters_) {
      os << "  " << pad(name) << c->value() << "\n";
    }
  }
  if (!gauges_.empty()) {
    os << "gauges:\n";
    for (const auto& [name, g] : gauges_) {
      os << "  " << pad(name) << detail::json_number(g->value()) << "\n";
    }
  }
  if (!histograms_.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : histograms_) {
      os << "  " << pad(name) << "count=" << h->count();
      if (h->count() > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4g", h->mean());
        os << " mean=" << buf;
      }
      os << "\n";
      if (h->count() == 0) continue;
      for (std::size_t i = 0; i < h->bucket_total(); ++i) {
        const std::uint64_t n = h->bucket_count(i);
        if (n == 0) continue;
        const std::string label =
            i < h->bounds().size()
                ? "<= " + format_bound(h->bounds()[i])
                : "> " + format_bound(h->bounds().back());
        os << "  " << pad("") << label << ": " << n << "\n";
      }
    }
  }
  if (!latencies_.empty()) {
    os << "latencies:\n";
    for (const auto& [name, l] : latencies_) {
      const LatencySnapshot s = l->snapshot();
      os << "  " << pad(name) << "count=" << s.count;
      if (s.count > 0) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      " p50=%.4gus p99=%.4gus max=%.4gus", s.p50_us(),
                      s.p99_us(), s.max_us());
        os << buf;
      }
      os << "\n";
    }
  }
  return os.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  for (const auto& [name, l] : latencies_) l->reset();
}

}  // namespace fetcam::obs
