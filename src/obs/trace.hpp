// Scoped tracing: RAII spans collected into a process-wide buffer and
// exported in Chrome trace format (load the file in chrome://tracing or
// https://ui.perfetto.dev to see the timeline).
//
// Spans record only when the observability level is kTrace at construction
// time; otherwise a ScopedSpan is two branches and no clock reads.  Names
// and categories must be string literals (the collector stores the
// pointers, not copies).
//
//   {
//     obs::ScopedSpan span("spice.solve_op", "spice");
//     ...  // timed region; nested spans nest in the viewer
//   }
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace fetcam::obs {

struct TraceEvent {
  const char* name = "";  ///< string literal
  const char* cat = "";   ///< string literal
  double ts_us = 0.0;     ///< start, microseconds since trace epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;  ///< small dense thread id (see thread_id())
  /// Request correlation id (0 = none).  Emitted as args.trace_id in the
  /// Chrome JSON so one request's spans can be filtered across
  /// wire -> dispatcher -> kernel -> completion threads.
  std::uint64_t trace_id = 0;
};

/// Process-wide span buffer.  record() appends under a mutex — spans are
/// coarse (a solve, a chunk, a transient run), so contention is negligible
/// next to the work they time.  The buffer is capped; events beyond the cap
/// are counted in dropped() instead of growing without bound.
class TraceCollector {
 public:
  static TraceCollector& instance();

  void record(const TraceEvent& ev);
  std::size_t size() const;
  std::uint64_t dropped() const;
  void clear();
  std::vector<TraceEvent> snapshot() const;

  /// Write the Chrome trace JSON (one event object per line inside the
  /// top-level array, so the file is also greppable line-by-line).
  bool write_chrome_trace(const std::string& path) const;
  std::string to_chrome_json() const;

  /// Small dense id for the calling thread (main thread observes whichever
  /// id it claims first).  Stable for the thread's lifetime.
  static std::uint32_t thread_id();

  static constexpr std::size_t kMaxEvents = 1u << 20;

 private:
  TraceCollector() = default;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// RAII wall-clock span.  Activation is latched at construction, so a level
/// change mid-span cannot tear the event.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "sim")
      : active_(trace_on()), name_(name), cat_(cat) {
    if (active_) t0_ = now_us();
  }
  /// Span carrying a request correlation id (see TraceEvent::trace_id).
  ScopedSpan(const char* name, const char* cat, std::uint64_t trace_id)
      : active_(trace_on()), name_(name), cat_(cat), trace_id_(trace_id) {
    if (active_) t0_ = now_us();
  }
  ~ScopedSpan() {
    if (active_) {
      TraceCollector::instance().record({name_, cat_, t0_, now_us() - t0_,
                                         TraceCollector::thread_id(),
                                         trace_id_});
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  const char* name_;
  const char* cat_;
  std::uint64_t trace_id_ = 0;
  double t0_ = 0.0;
};

}  // namespace fetcam::obs
