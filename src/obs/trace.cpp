#include "obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <sstream>

#include "obs/json_util.hpp"

namespace fetcam::obs {

TraceCollector& TraceCollector::instance() {
  static TraceCollector* c = new TraceCollector();  // never destroyed
  return *c;
}

void TraceCollector::record(const TraceEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(ev);
}

std::size_t TraceCollector::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t TraceCollector::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint32_t TraceCollector::thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string TraceCollector::to_chrome_json() const {
  const auto events = snapshot();
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const auto& ev : events) {
    os << (first ? "" : ",\n");
    os << "{\"name\":\"" << detail::json_escape(ev.name) << "\",\"cat\":\""
       << detail::json_escape(ev.cat) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << ev.tid << ",\"ts\":" << detail::json_number(ev.ts_us)
       << ",\"dur\":" << detail::json_number(ev.dur_us);
    if (ev.trace_id != 0) {
      os << ",\"args\":{\"trace_id\":" << ev.trace_id << "}";
    }
    os << "}";
    first = false;
  }
  os << "\n]\n";
  return os.str();
}

bool TraceCollector::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_json();
  return static_cast<bool>(f);
}

}  // namespace fetcam::obs
